// The fault matrix (ISSUE acceptance): >= 100 seeded episodes for every
// adversary shape {kills, restarts, partitions, drops} x host scheme
// {heap, hashed wheel, hierarchical wheel}, each verified end-to-end by the
// ClusterOracle — exactly-once within the computed slop, no fire after an
// acknowledged cancel, duplicate-suppression conservation, full quiesce.
//
// Episode count: TWHEEL_CLUSTER_EPISODES overrides when set (scripts/verify.sh
// --quick exports 4); otherwise the floor is 100 per matrix cell in EVERY
// build flavour — the sanitizer configurations run the full matrix too, they
// do not get the torture-suite reduction (TWHEEL_TORTURE_EPISODES only ever
// raises the count here).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/cluster_oracle.h"
#include "src/cluster/fault_schedule.h"
#include "src/rng/rng.h"

namespace twheel::cluster {
namespace {

std::size_t ClusterEpisodes() {
  if (const char* env = std::getenv("TWHEEL_CLUSTER_EPISODES")) {
    const long parsed = std::atol(env);
    if (parsed > 0) {
      return static_cast<std::size_t>(parsed);
    }
  }
  std::size_t episodes = 100;
  if (const char* env = std::getenv("TWHEEL_TORTURE_EPISODES")) {
    const long parsed = std::atol(env);
    if (parsed > static_cast<long>(episodes)) {
      episodes = static_cast<std::size_t>(parsed);
    }
  }
  return episodes;
}

constexpr SchemeId kHostSchemes[] = {
    SchemeId::kScheme3Heap,
    SchemeId::kScheme6HashedUnsorted,
    SchemeId::kScheme7Hierarchical,
};

void RunEpisode(ScheduleKind kind, SchemeId scheme, std::uint64_t seed) {
  ScheduleParams params;
  params.nodes = 5;
  params.replication_factor = 3;
  params.horizon = 200;
  params.seed = seed;
  const FaultSchedule schedule = MakeFaultSchedule(kind, params);
  std::string why;
  ASSERT_TRUE(ValidateSchedule(schedule, params.nodes,
                               params.replication_factor - 1, &why))
      << ScheduleKindName(kind) << " seed " << seed << ": " << why;

  ClusterConfig config;  // default lossy links: 5% loss, delay 2..10
  config.nodes = params.nodes;
  config.replication_factor = params.replication_factor;
  config.seed = seed;
  config.node_scheme.scheme = scheme;
  TimerCluster cluster(config, schedule);

  // Client-side live set, kept exact: deliveries are synchronous with the
  // coordinator's bookkeeping, so every Restart/Cancel below targets a key the
  // coordinator also believes is live and MUST be acknowledged.
  std::vector<std::uint64_t> live;
  cluster.set_fire_callback(
      [&live](std::uint64_t key, std::uint32_t, Tick) {
        live.erase(std::find(live.begin(), live.end(), key));
      });

  rng::Xoshiro256 rng(seed ^ (0xFA57u + static_cast<std::uint64_t>(kind)));
  std::uint64_t next_key = 0;
  for (Tick t = 0; t < params.horizon; ++t) {
    if (rng.NextBool(0.6)) {
      const std::uint64_t key = next_key++;
      ASSERT_TRUE(cluster.Set(key, 1 + rng.NextBounded(60)));
      live.push_back(key);
    }
    if (!live.empty() && rng.NextBool(0.12)) {
      const std::uint64_t key = live[rng.NextBounded(live.size())];
      ASSERT_TRUE(cluster.Restart(key, 1 + rng.NextBounded(60)))
          << "restart of a client-live key missed";
    }
    if (!live.empty() && rng.NextBool(0.12)) {
      const std::size_t at = rng.NextBounded(live.size());
      ASSERT_TRUE(cluster.Cancel(live[at]))
          << "cancel of a client-live key missed";
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(at));
    }
    cluster.Step();
  }
  cluster.Drain(20000);
  ASSERT_TRUE(cluster.quiesced())
      << ScheduleKindName(kind) << "/" << SchemeName(scheme) << " seed "
      << seed << ": failed to quiesce (live " << cluster.live_timers() << ")";
  ASSERT_TRUE(live.empty()) << "client still waiting on " << live.size()
                            << " fires";

  ClusterOracle oracle(config, schedule);
  const OracleReport report = oracle.Check(cluster.events(), cluster.stats());
  ASSERT_TRUE(report.ok) << ScheduleKindName(kind) << "/" << SchemeName(scheme)
                         << " seed " << seed << ": " << report.violation;
  EXPECT_GT(report.fires_checked, 0u) << "episode exercised no fires";
}

void RunMatrixFor(ScheduleKind kind) {
  const std::size_t episodes = ClusterEpisodes();
  for (SchemeId scheme : kHostSchemes) {
    for (std::size_t ep = 0; ep < episodes; ++ep) {
      RunEpisode(kind, scheme, 1000 * static_cast<std::uint64_t>(kind) + ep);
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
    }
  }
}

TEST(ClusterFaultTest, KillsMatrix) { RunMatrixFor(ScheduleKind::kKills); }

TEST(ClusterFaultTest, RestartsMatrix) {
  RunMatrixFor(ScheduleKind::kRestarts);
}

TEST(ClusterFaultTest, PartitionsMatrix) {
  RunMatrixFor(ScheduleKind::kPartitions);
}

TEST(ClusterFaultTest, DropsMatrix) { RunMatrixFor(ScheduleKind::kDrops); }

// The suppressors must actually be exercised by the matrix: across a sample
// of episodes, survivor leases pop and get classified as duplicates, and the
// authoritative disarms reap the rest — otherwise the exactly-once evidence
// above is vacuous.
TEST(ClusterFaultTest, AdversariesActuallyProduceDuplicatePops) {
  ClusterStats total;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    ScheduleParams params;
    params.nodes = 5;
    params.replication_factor = 3;
    params.horizon = 200;
    params.seed = seed;
    const FaultSchedule schedule =
        MakeFaultSchedule(ScheduleKind::kPartitions, params);
    ClusterConfig config;
    config.nodes = params.nodes;
    config.replication_factor = params.replication_factor;
    config.seed = seed;
    TimerCluster cluster(config, schedule);
    cluster.set_fire_callback([](std::uint64_t, std::uint32_t, Tick) {});
    for (std::uint64_t key = 0; key < 64; ++key) {
      ASSERT_TRUE(cluster.Set(key, 1 + (key * 7) % 120));
    }
    for (Tick t = 0; t < 200; ++t) {
      cluster.Step();
    }
    cluster.Drain(20000);
    ASSERT_TRUE(cluster.quiesced());
    const ClusterStats& s = cluster.stats();
    total.pops += s.pops;
    total.delivered += s.delivered;
    total.duplicate_suppressed += s.duplicate_suppressed;
    total.lease_disarms += s.lease_disarms;
    total.partition_drops += s.partition_drops;
  }
  EXPECT_GT(total.pops, total.delivered)
      << "no survivor lease ever popped: the failover path went untested";
  EXPECT_GT(total.duplicate_suppressed + total.lease_disarms, 0u);
  EXPECT_GT(total.partition_drops, 0u) << "partitions never gated a packet";
}

}  // namespace
}  // namespace twheel::cluster
