// Differential torture over the whole replication stack: the decide-then-
// replay driver (src/verify/) hammers ClusterFacadeService — the synchronous-
// transport TimerCluster behind the four-routine interface — against
// OracleTimers, with the full client alphabet: starts, cancels, stale and
// fabricated handle pokes, zero intervals, in-place restarts (fresh, stale,
// zero), and the in-handler re-entrancy set (re-arm, sibling stop/restart,
// start-next-tick, self-poke). Every host pop threads through arm / fire /
// notify / disarm / suppress rounds before the client sees it, and the driver
// checks per-tick expiry multisets, clocks, outstanding counts, return codes,
// and the conservation law after every tick.
//
// Episode count honors TWHEEL_TORTURE_EPISODES like the rest of the torture
// suite; scripts/verify.sh reduces it under sanitizers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "src/cluster/facade_service.h"
#include "src/verify/differential_driver.h"

namespace twheel::cluster {
namespace {

std::size_t Episodes(std::size_t scale_down = 1) {
  std::size_t episodes = 50;
  if (const char* env = std::getenv("TWHEEL_TORTURE_EPISODES")) {
    const long parsed = std::atol(env);
    if (parsed > 0) {
      episodes = static_cast<std::size_t>(parsed);
    }
  }
  return std::max<std::size_t>(1, episodes / scale_down);
}

constexpr SchemeId kHostSchemes[] = {
    SchemeId::kScheme3Heap,
    SchemeId::kScheme6HashedUnsorted,
    SchemeId::kScheme7Hierarchical,
};

verify::DriverOptions TortureOptions(std::uint64_t seed) {
  verify::DriverOptions options;
  options.seed = seed;
  options.ticks = 96;
  options.starts_per_tick = 1.5;
  options.max_interval = 48;
  options.stop_probability = 0.3;
  options.stale_poke_probability = 0.4;
  options.zero_interval_probability = 0.1;
  options.restart_probability = 0.25;
  options.restart_stale_probability = 0.15;
  options.restart_zero_probability = 0.1;
  options.rearm_probability = 0.15;
  options.restart_sibling_probability = 0.1;
  options.stop_sibling_probability = 0.1;
  options.start_next_tick_probability = 0.15;
  options.self_poke_probability = 0.2;
  // The facade refuses StartPeriodic (kNotSupported) by documented design.
  options.periodic_probability = 0.0;
  return options;
}

TEST(ClusterTortureTest, DifferentialOverFacadeAllHostSchemes) {
  const std::size_t episodes = Episodes();
  for (SchemeId scheme : kHostSchemes) {
    for (std::size_t ep = 0; ep < episodes; ++ep) {
      FacadeConfig config;
      config.node_scheme.scheme = scheme;
      config.seed = 31 + ep;
      ClusterFacadeService sut(config);
      const verify::DriverReport report =
          verify::RunDifferential(sut, TortureOptions(9000 + ep));
      ASSERT_TRUE(report.ok) << SchemeName(scheme) << " episode " << ep << ": "
                             << report.divergence;
      ASSERT_GT(report.expiries, 0u);
    }
  }
}

TEST(ClusterTortureTest, DifferentialWithReplicationThree) {
  // Wider fan-out: every client op drives three replicas, so the disarm and
  // suppress machinery runs at full width under the same exactness bar.
  const std::size_t episodes = Episodes(2);
  for (std::size_t ep = 0; ep < episodes; ++ep) {
    FacadeConfig config;
    config.nodes = 4;
    config.replication_factor = 3;
    config.node_scheme.scheme = SchemeId::kScheme6HashedUnsorted;
    config.seed = 77 + ep;
    ClusterFacadeService sut(config);
    const verify::DriverReport report =
        verify::RunDifferential(sut, TortureOptions(11000 + ep));
    ASSERT_TRUE(report.ok) << "episode " << ep << ": " << report.divergence;
  }
}

TEST(ClusterTortureTest, FacadeRefusesPeriodicRegistration) {
  FacadeConfig config;
  ClusterFacadeService sut(config);
  const StartResult result = sut.StartPeriodic(5, 1);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error(), TimerError::kNotSupported);
}

TEST(ClusterTortureTest, FacadeSuppressionStatsStayConserved) {
  // After a torture episode the cluster-side conservation law must hold on
  // the facade's inner cluster too: every receipt delivered or classified.
  FacadeConfig config;
  config.node_scheme.scheme = SchemeId::kScheme3Heap;
  ClusterFacadeService sut(config);
  const verify::DriverReport report =
      verify::RunDifferential(sut, TortureOptions(424242));
  ASSERT_TRUE(report.ok) << report.divergence;
  const ClusterStats& stats = sut.cluster().stats();
  EXPECT_EQ(stats.fire_receipts,
            stats.delivered + stats.duplicate_suppressed +
                stats.stale_gen_suppressed + stats.after_cancel_suppressed);
  EXPECT_EQ(stats.arm_rejects, 0u);
  EXPECT_EQ(stats.orphan_pops, 0u);
}

}  // namespace
}  // namespace twheel::cluster
