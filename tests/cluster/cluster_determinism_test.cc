// Seed determinism (ISSUE satellite): the cluster is a pure function of
// (seed, schedule, workload script).
//
//   * Twin test: two runs with identical seed, fault schedule, and scripted
//     client workload produce BYTE-IDENTICAL client event traces, stats
//     blocks, and channel drop counts — full lossy links and faults included.
//     Channel fates are content-hashed (net::Channel), faults apply at a fixed
//     Step phase, and all receiver logic commutes within a tick, so there is
//     no hidden iteration-order or allocator dependence to diverge on.
//
//   * Lockstep cross-scheme test: the same seed + schedule + script run over
//     EVERY wheel scheme in the registry yields the same canonical fire trace
//     — identical (tick, key, gen, deadline) multisets — because the protocol
//     never depends on how a host orders same-tick pops. Links are fixed-delay
//     lossless here: with probabilistic fates, packet sequence numbers (which
//     DO depend on intra-tick pop order) would legitimately perturb timing
//     across schemes; determinism within one scheme is the twin test's job.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/cluster_oracle.h"
#include "src/cluster/fault_schedule.h"
#include "src/rng/rng.h"

namespace twheel::cluster {
namespace {

// Open-loop scripted workload: every op is decided by the rng alone (never by
// cluster responses), so the identical script can drive any configuration.
// Cancels and restarts may miss — deterministically.
void DriveScripted(TimerCluster& cluster, std::uint64_t seed, Tick horizon) {
  rng::Xoshiro256 rng(seed ^ 0x5C21A7EDULL);
  std::uint64_t next_key = 0;
  for (Tick t = 0; t < horizon; ++t) {
    if (rng.NextBool(0.55)) {
      (void)cluster.Set(next_key++, 1 + rng.NextBounded(40));
    }
    if (next_key != 0 && rng.NextBool(0.15)) {
      (void)cluster.Restart(rng.NextBounded(next_key),
                            1 + rng.NextBounded(40));
    }
    if (next_key != 0 && rng.NextBool(0.12)) {
      (void)cluster.Cancel(rng.NextBounded(next_key));
    }
    cluster.Step();
  }
  cluster.Drain(20000);
}

TEST(ClusterDeterminismTest, TwinLossyFaultedRunsAreByteIdentical) {
  for (ScheduleKind kind : kAllScheduleKinds) {
    ScheduleParams params;
    params.nodes = 5;
    params.replication_factor = 3;
    params.horizon = 150;
    params.seed = 42;
    const FaultSchedule schedule = MakeFaultSchedule(kind, params);

    ClusterConfig config;  // default lossy links
    config.nodes = params.nodes;
    config.replication_factor = params.replication_factor;
    config.seed = 42;
    auto run = [&](std::vector<ClientEvent>* events, ClusterStats* stats,
                   std::uint64_t* drops, Tick* end) {
      TimerCluster cluster(config, schedule);
      cluster.set_fire_callback([](std::uint64_t, std::uint32_t, Tick) {});
      DriveScripted(cluster, 42, params.horizon);
      ASSERT_TRUE(cluster.quiesced())
          << ScheduleKindName(kind) << ": twin run failed to quiesce";
      *events = cluster.events();
      *stats = cluster.stats();
      *drops = cluster.link_drops();
      *end = cluster.now();
    };
    std::vector<ClientEvent> events_a, events_b;
    ClusterStats stats_a, stats_b;
    std::uint64_t drops_a = 0, drops_b = 0;
    Tick end_a = 0, end_b = 0;
    run(&events_a, &stats_a, &drops_a, &end_a);
    run(&events_b, &stats_b, &drops_b, &end_b);
    EXPECT_EQ(events_a, events_b)
        << ScheduleKindName(kind) << ": event traces diverge";
    EXPECT_EQ(stats_a, stats_b) << ScheduleKindName(kind);
    EXPECT_EQ(drops_a, drops_b) << ScheduleKindName(kind);
    EXPECT_EQ(end_a, end_b) << ScheduleKindName(kind);
    EXPECT_GT(drops_a, 0u)
        << ScheduleKindName(kind) << ": lossy links never dropped — vacuous";
  }
}

// Canonical form: events sorted by (tick, key, gen, kind, payload). Intra-tick
// delivery order is the ONLY thing allowed to vary across host schemes.
std::vector<ClientEvent> Canonicalize(std::vector<ClientEvent> events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const ClientEvent& a, const ClientEvent& b) {
                     return std::tuple(a.at, a.key, a.gen,
                                       static_cast<int>(a.kind), a.deadline) <
                            std::tuple(b.at, b.key, b.gen,
                                       static_cast<int>(b.kind), b.deadline);
                   });
  return events;
}

TEST(ClusterDeterminismTest, AllSchemesProduceTheSameCanonicalTrace) {
  ScheduleParams params;
  params.nodes = 5;
  params.replication_factor = 3;
  params.horizon = 150;
  params.seed = 7;
  const FaultSchedule schedule =
      MakeFaultSchedule(ScheduleKind::kRestarts, params);

  std::vector<ClientEvent> reference;
  SchemeId reference_scheme = SchemeId::kScheme1Unordered;
  bool first = true;
  for (SchemeId scheme : kAllSchemes) {
    ClusterConfig config;
    config.nodes = params.nodes;
    config.replication_factor = params.replication_factor;
    config.seed = 7;
    config.link.loss_probability = 0.0;  // fixed fates across schemes
    config.link.delay_lo = 2;
    config.link.delay_hi = 2;
    // Bounded-range wheels must span the largest arm: interval + rank ladder
    // + lease extensions + catch-up after an outage.
    config.node_scheme.scheme = scheme;
    config.node_scheme.wheel_size = 512;
    TimerCluster cluster(config, schedule);
    cluster.set_fire_callback([](std::uint64_t, std::uint32_t, Tick) {});
    DriveScripted(cluster, 7, params.horizon);
    ASSERT_TRUE(cluster.quiesced())
        << SchemeName(scheme) << " failed to quiesce";
    ASSERT_EQ(cluster.stats().arm_rejects, 0u)
        << SchemeName(scheme) << " rejected arms: span misconfigured";

    ClusterOracle oracle(config, schedule);
    const OracleReport report =
        oracle.Check(cluster.events(), cluster.stats());
    ASSERT_TRUE(report.ok) << SchemeName(scheme) << ": " << report.violation;

    std::vector<ClientEvent> canonical = Canonicalize(cluster.events());
    if (first) {
      reference = std::move(canonical);
      reference_scheme = scheme;
      first = false;
      ASSERT_FALSE(reference.empty());
      continue;
    }
    EXPECT_EQ(canonical, reference)
        << SchemeName(scheme) << " diverges from "
        << SchemeName(reference_scheme);
  }
}

}  // namespace
}  // namespace twheel::cluster
