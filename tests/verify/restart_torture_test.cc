// Concurrent restart torture: producer threads race RestartTimer against
// fires, cancels, and each other on the ShardedWheel (locked and MPSC
// deferred modes). The driver (src/verify/concurrent_driver.h) checks the
// restart-specific invariants on top of the usual exactly-once/no-early-fire
// set:
//
//   * a timer restarted before its old deadline never fires at that old
//     deadline — the fire-tick lower bound advances to (observed now at the
//     LAST successful restart) + its new interval;
//   * restart racing a fire resolves exactly once: kOk means the timer fires
//     only at the relinked deadline, kNoSuchTimer means the fire (or a cancel)
//     won and the cookie is accounted exactly once — never both, never
//     neither;
//   * in lockstep mode every RestartTimer call (result included) is replayed
//     call-for-call into OracleTimers and the per-tick expiry multisets must
//     stay identical through the relinks.
//
// Episode count honors TWHEEL_TORTURE_EPISODES like the rest of the torture
// suite; scripts/verify.sh reduces it under sanitizers.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/concurrent/sharded_wheel.h"
#include "src/verify/concurrent_driver.h"

namespace twheel::verify {
namespace {

std::size_t Episodes(std::size_t scale_down = 1) {
  std::size_t episodes = 50;
  if (const char* env = std::getenv("TWHEEL_TORTURE_EPISODES")) {
    const long parsed = std::atol(env);
    if (parsed > 0) {
      episodes = static_cast<std::size_t>(parsed);
    }
  }
  return std::max<std::size_t>(1, episodes / scale_down);
}

concurrent::SubmitOptions Submit(std::size_t ring, std::size_t table,
                                 concurrent::SubmitPolicy policy) {
  concurrent::SubmitOptions submit;
  submit.ring_capacity = ring;
  submit.registration_capacity = table;
  submit.on_full = policy;
  return submit;
}

constexpr std::size_t kProducerCounts[] = {1, 2, 4};

TortureOptions RestartOptions(std::uint64_t seed, std::size_t producers) {
  TortureOptions options;
  options.seed = seed;
  options.producers = producers;
  options.ops_per_producer = 256;
  options.max_interval = 64;
  options.race_ticks = 128;
  options.stop_probability = 0.2;
  options.restart_probability = 0.35;
  return options;
}

TEST(RestartTortureTest, ManualRaceMpscWithRestarts) {
  const std::size_t episodes = Episodes();
  std::size_t restarts = 0;
  for (std::size_t producers : kProducerCounts) {
    for (std::size_t ep = 0; ep < episodes; ++ep) {
      concurrent::ShardedWheel wheel(
          4, 64, Submit(8192, 8192, concurrent::SubmitPolicy::kReject));
      TortureOptions options = RestartOptions(10000 + ep, producers);
      options.mode = TortureMode::kManualRace;
      const TortureReport report = RunTorture(wheel, options);
      ASSERT_TRUE(report.ok) << "producers=" << producers << " episode=" << ep
                             << ": " << report.violation;
      ASSERT_EQ(report.restart_rejects, 0u) << "generous capacity rejected";
      restarts += report.restarts;
    }
  }
  EXPECT_GT(restarts, 0u) << "restart alphabet never exercised";
}

TEST(RestartTortureTest, ManualRaceMpscRestartFireRaces) {
  // Short fuses and a hot restart mix: most restarts land close to (or racing)
  // the old deadline, so the kOk-vs-kNoSuchTimer referee is exercised
  // constantly. restart_misses counts the fires that won.
  const std::size_t episodes = Episodes(2);
  std::size_t misses = 0;
  for (std::size_t producers : kProducerCounts) {
    for (std::size_t ep = 0; ep < episodes; ++ep) {
      concurrent::ShardedWheel wheel(
          2, 32, Submit(8192, 8192, concurrent::SubmitPolicy::kReject));
      TortureOptions options = RestartOptions(11000 + ep, producers);
      options.mode = TortureMode::kManualRace;
      options.max_interval = 8;  // fires chase the relinks
      options.restart_probability = 0.5;
      options.stop_probability = 0.1;
      const TortureReport report = RunTorture(wheel, options);
      ASSERT_TRUE(report.ok) << "producers=" << producers << " episode=" << ep
                             << ": " << report.violation;
      misses += report.restart_misses;
    }
  }
  EXPECT_GT(misses, 0u) << "no restart ever raced a fire";
}

TEST(RestartTortureTest, ManualRaceMpscSpinBackpressureWithRestarts) {
  // Tiny ring under kSpin: restart commands block on the drainer alongside
  // starts and cancels; every accepted relink must still resolve exactly once.
  const std::size_t episodes = Episodes(2);
  for (std::size_t producers : kProducerCounts) {
    for (std::size_t ep = 0; ep < episodes; ++ep) {
      concurrent::ShardedWheel wheel(
          1, 64, Submit(64, 4096, concurrent::SubmitPolicy::kSpin));
      TortureOptions options = RestartOptions(12000 + ep, producers);
      options.mode = TortureMode::kManualRace;
      const TortureReport report = RunTorture(wheel, options);
      ASSERT_TRUE(report.ok) << "producers=" << producers << " episode=" << ep
                             << ": " << report.violation;
      ASSERT_EQ(report.restart_rejects, 0u) << "kSpin must never reject";
    }
  }
}

TEST(RestartTortureTest, RestartCommitVsDrainNeverWedges) {
  // Regression for the reserve-commit-publish ordering in SubmitRestart. The
  // earlier publish-then-commit protocol let the drainer consume a kRestart
  // command before its commit CAS landed: Apply saw counter==0, dropped the
  // relink, and the commit then succeeded anyway — an orphaned suppression
  // ticket with no relink command left in the ring, so ClaimFire suppressed
  // every subsequent expiry and the timer never fired again. Hammer exactly
  // that window: producers restart one timer in a tight loop while this
  // thread drains/ticks as fast as it can, then quiesce and require the timer
  // to fire exactly once within a bounded number of ticks.
  const std::size_t rounds = std::max<std::size_t>(Episodes(2), 10);
  constexpr Duration kInterval = 32;
  constexpr std::size_t kProducers = 3;
  for (std::size_t round = 0; round < rounds; ++round) {
    // Tiny ring under kReject: reservations hit the full path constantly, so
    // drains overlap the reserve/commit/publish window at high frequency.
    concurrent::ShardedWheel wheel(
        1, 64, Submit(16, 64, concurrent::SubmitPolicy::kReject));
    std::atomic<int> fires{0};
    wheel.set_expiry_handler(
        [&fires](RequestId, Tick) { fires.fetch_add(1); });
    auto handle = wheel.StartTimer(kInterval, 7);
    ASSERT_TRUE(handle.has_value());
    std::atomic<bool> stop{false};
    std::vector<std::thread> producers;
    for (std::size_t p = 0; p < kProducers; ++p) {
      producers.emplace_back([&wheel, &stop, handle] {
        while (!stop.load(std::memory_order_acquire)) {
          const TimerError err = wheel.RestartTimer(handle.value(), kInterval);
          if (err == TimerError::kNoSuchTimer) {
            return;  // the fire won; nothing left to restart
          }
          // kOk relinked; kNoCapacity (full ring) just retries.
        }
      });
    }
    for (int i = 0; i < 1500; ++i) {
      wheel.PerTickBookkeeping();
    }
    stop.store(true, std::memory_order_release);
    for (std::thread& t : producers) {
      t.join();
    }
    // Quiesced: the timer either fired mid-hammer or sits relinked at most
    // kInterval ticks out (plus one drain for a still-pending command). A
    // wedged suppression ticket would keep it from ever firing.
    for (Duration i = 0; i < 2 * kInterval && fires.load() == 0; ++i) {
      wheel.PerTickBookkeeping();
    }
    ASSERT_EQ(fires.load(), 1) << "round " << round
                               << ": restarted timer wedged or double-fired";
  }
}

TEST(RestartTortureTest, ManualRaceLockedShardedWithRestarts) {
  // Immediate-visibility cross-check: the same invariants hold for the locked
  // wheel, validating the checker's restart bound against a simpler service.
  const std::size_t episodes = Episodes(2);
  for (std::size_t producers : kProducerCounts) {
    for (std::size_t ep = 0; ep < episodes; ++ep) {
      concurrent::ShardedWheel wheel(4, 64);
      TortureOptions options = RestartOptions(13000 + ep, producers);
      options.mode = TortureMode::kManualRace;
      const TortureReport report = RunTorture(wheel, options);
      ASSERT_TRUE(report.ok) << "producers=" << producers << " episode=" << ep
                             << ": " << report.violation;
    }
  }
}

TEST(RestartTortureTest, TickerRaceMpscWithRestarts) {
  const std::size_t episodes = std::min<std::size_t>(Episodes(5), 10);
  for (std::size_t producers : kProducerCounts) {
    for (std::size_t ep = 0; ep < episodes; ++ep) {
      concurrent::ShardedWheel wheel(
          4, 64, Submit(8192, 8192, concurrent::SubmitPolicy::kSpin));
      TortureOptions options = RestartOptions(14000 + ep, producers);
      options.mode = TortureMode::kTickerRace;
      options.ticker_period_us = 20;
      options.ops_per_producer = 2048;
      const TortureReport report = RunTorture(wheel, options);
      ASSERT_TRUE(report.ok) << "producers=" << producers << " episode=" << ep
                             << ": " << report.violation;
    }
  }
}

TEST(RestartTortureTest, LockstepOracleMpscReplaysRestarts) {
  // Call-for-call restart replay into OracleTimers under genuine MPSC
  // contention inside each frozen enqueue phase: results, per-tick expiry
  // multisets, clocks, and outstanding() must match exactly through relinks.
  const std::size_t episodes = Episodes(2);
  std::size_t restarts = 0;
  for (std::size_t producers : kProducerCounts) {
    for (std::size_t ep = 0; ep < episodes; ++ep) {
      concurrent::ShardedWheel wheel(
          2, 64, Submit(8192, 8192, concurrent::SubmitPolicy::kReject));
      TortureOptions options = RestartOptions(15000 + ep, producers);
      options.mode = TortureMode::kLockstepOracle;
      options.ops_per_producer = 48;
      options.rounds = 12;
      const TortureReport report = RunTorture(wheel, options);
      ASSERT_TRUE(report.ok) << "producers=" << producers << " episode=" << ep
                             << ": " << report.violation;
      restarts += report.restarts;
    }
  }
  EXPECT_GT(restarts, 0u) << "lockstep never replayed a restart";
}

TEST(RestartTortureTest, LockstepOracleLockedShardedReplaysRestarts) {
  const std::size_t episodes = Episodes(4);
  for (std::size_t producers : kProducerCounts) {
    for (std::size_t ep = 0; ep < episodes; ++ep) {
      concurrent::ShardedWheel wheel(2, 64);
      TortureOptions options = RestartOptions(16000 + ep, producers);
      options.mode = TortureMode::kLockstepOracle;
      options.ops_per_producer = 48;
      options.rounds = 12;
      const TortureReport report = RunTorture(wheel, options);
      ASSERT_TRUE(report.ok) << "producers=" << producers << " episode=" << ep
                             << ": " << report.violation;
    }
  }
}

}  // namespace
}  // namespace twheel::verify
