// Differential model checking: every TimerService implementation, against the
// sorted-multimap oracle, over ≥ 100 independently seeded randomized episodes
// each. An episode mixes starts, stops, stale-handle pokes, zero-interval
// rejects, and (where the implementation's handler contract allows) in-handler
// re-arms, sibling stops, and next-tick starts; after every tick the expiry
// *sets*, outstanding() population, and clocks must be identical. See
// src/verify/differential_driver.h for the decide-then-replay protocol.
//
// The jump suites additionally interleave randomized AdvanceTo batches — the
// occupancy-bitmap fast path — pinned to wheel-size and hierarchy-rollover
// boundaries, checked (tick, id)-exactly against the oracle's loop default.

#include <gtest/gtest.h>

#include "src/verify/differential_driver.h"
#include "tests/verify/all_services.h"

namespace twheel::verify {
namespace {

using verify_tests::AllServiceCases;
using verify_tests::ServiceCase;

class ModelCheckTest : public ::testing::TestWithParam<ServiceCase> {};

// 100 seeded episodes of plain workload (no handler re-entrancy): every
// implementation, including the lock-holding wrapper, must track the oracle.
TEST_P(ModelCheckTest, HundredSeededEpisodesMatchOracle) {
  const ServiceCase& c = GetParam();
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    DriverOptions options;
    options.seed = seed;
    options.ticks = 96;
    options.starts_per_tick = 1.5 + 0.01 * static_cast<double>(seed % 7);
    options.max_interval = 200;
    auto service = c.make();
    const DriverReport report = RunDifferential(*service, options);
    ASSERT_TRUE(report.ok) << c.label << " seed " << seed << ": "
                           << report.divergence;
    ASSERT_GT(report.starts, 0u) << c.label << " seed " << seed << ": vacuous";
  }
}

// Episodes with the full re-entrancy alphabet enabled, for every implementation
// whose handler contract permits calling back into the service.
TEST_P(ModelCheckTest, ReentrantEpisodesMatchOracle) {
  const ServiceCase& c = GetParam();
  if (!c.handlers_may_reenter) {
    GTEST_SKIP() << c.label << " runs handlers under its lock (by design)";
  }
  for (std::uint64_t seed = 1000; seed < 1040; ++seed) {
    DriverOptions options;
    options.seed = seed;
    options.ticks = 96;
    options.max_interval = 200;
    options.rearm_probability = 0.3;
    options.stop_sibling_probability = 0.3;
    options.start_next_tick_probability = 0.2;
    options.self_poke_probability = 0.5;
    auto service = c.make();
    const DriverReport report = RunDifferential(*service, options);
    ASSERT_TRUE(report.ok) << c.label << " seed " << seed << ": "
                           << report.divergence;
    // The alphabet must actually have been exercised, not just configured.
    EXPECT_GT(report.handler_rearms + report.handler_sibling_stops +
                  report.handler_next_tick_starts,
              0u)
        << c.label << " seed " << seed;
  }
}

// High-churn episodes: bursty arrivals and aggressive cancellation recycle arena
// slots rapidly, so the stale-handle pokes hit recently reused slots — the exact
// situation generation counters exist for.
TEST_P(ModelCheckTest, ChurnEpisodesKeepHandlesSafe) {
  const ServiceCase& c = GetParam();
  for (std::uint64_t seed = 2000; seed < 2020; ++seed) {
    DriverOptions options;
    options.seed = seed;
    options.ticks = 128;
    options.starts_per_tick = 4.0;
    options.min_interval = 1;
    options.max_interval = 24;  // short fuses: constant expiry + recycling
    options.stop_probability = 0.8;
    options.stale_poke_probability = 1.0;
    auto service = c.make();
    const DriverReport report = RunDifferential(*service, options);
    ASSERT_TRUE(report.ok) << c.label << " seed " << seed << ": "
                           << report.divergence;
    EXPECT_GT(report.stale_pokes, 0u) << c.label << " seed " << seed;
  }
}

// 100 seeded episodes where a quarter of the ticks are replaced by AdvanceTo
// jumps. The pivot deltas land exactly on, one short of, and one past the wheel
// sizes in play (64, 256 = hierarchical level-2 unit, 512 = the Scheme 4
// configuration), so cursor wraps and cascade boundaries are hit dead-on rather
// than only by chance. The oracle has no AdvanceTo override: it runs the base
// class's bookkeeping loop, making every episode a batched-vs-loop equivalence
// check for the implementation's occupancy-bitmap skipping.
TEST_P(ModelCheckTest, JumpEpisodesMatchOracle) {
  const ServiceCase& c = GetParam();
  std::size_t total_jumps = 0;
  std::size_t total_jump_ticks = 0;
  for (std::uint64_t seed = 3000; seed < 3100; ++seed) {
    DriverOptions options;
    options.seed = seed;
    options.ticks = 64;
    options.max_interval = 300;
    options.jump_probability = 0.25;
    options.max_jump = 300;
    options.jump_pivots = {63, 64, 65, 255, 256, 257, 511, 512, 513};
    auto service = c.make();
    const DriverReport report = RunDifferential(*service, options);
    ASSERT_TRUE(report.ok) << c.label << " seed " << seed << ": "
                           << report.divergence;
    ASSERT_GT(report.starts, 0u) << c.label << " seed " << seed << ": vacuous";
    total_jumps += report.jumps;
    total_jump_ticks += report.jump_ticks;
  }
  // The jump alphabet must actually have been exercised across the suite.
  EXPECT_GT(total_jumps, 0u) << c.label;
  EXPECT_GT(total_jump_ticks, total_jumps) << c.label << ": only 1-tick jumps";
}

// Fewer, bigger episodes whose pivots cross the full {16,16,16} hierarchical
// span (4096) and the 1024 level boundary: a single jump can force cascades at
// every level, including the all-levels-aligned rollover tick.
TEST_P(ModelCheckTest, SpanRolloverJumpsMatchOracle) {
  const ServiceCase& c = GetParam();
  std::size_t total_jumps = 0;
  for (std::uint64_t seed = 4000; seed < 4010; ++seed) {
    DriverOptions options;
    options.seed = seed;
    options.ticks = 32;
    options.max_interval = 300;
    options.jump_probability = 0.3;
    options.max_jump = 600;
    options.jump_pivots = {1023, 1024, 1025, 4095, 4096, 4097};
    auto service = c.make();
    const DriverReport report = RunDifferential(*service, options);
    ASSERT_TRUE(report.ok) << c.label << " seed " << seed << ": "
                           << report.divergence;
    total_jumps += report.jumps;
  }
  EXPECT_GT(total_jumps, 0u) << c.label;
}

INSTANTIATE_TEST_SUITE_P(AllImplementations, ModelCheckTest,
                         ::testing::ValuesIn(AllServiceCases()),
                         [](const ::testing::TestParamInfo<ServiceCase>& param) {
                           return param.param.label;
                         });

}  // namespace
}  // namespace twheel::verify
