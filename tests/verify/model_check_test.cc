// Differential model checking: every TimerService implementation, against the
// sorted-multimap oracle, over ≥ 100 independently seeded randomized episodes
// each. An episode mixes starts, stops, stale-handle pokes, zero-interval
// rejects, and (where the implementation's handler contract allows) in-handler
// re-arms, sibling stops, and next-tick starts; after every tick the expiry
// *sets*, outstanding() population, and clocks must be identical. See
// src/verify/differential_driver.h for the decide-then-replay protocol.

#include <gtest/gtest.h>

#include "src/verify/differential_driver.h"
#include "tests/verify/all_services.h"

namespace twheel::verify {
namespace {

using verify_tests::AllServiceCases;
using verify_tests::ServiceCase;

class ModelCheckTest : public ::testing::TestWithParam<ServiceCase> {};

// 100 seeded episodes of plain workload (no handler re-entrancy): every
// implementation, including the lock-holding wrapper, must track the oracle.
TEST_P(ModelCheckTest, HundredSeededEpisodesMatchOracle) {
  const ServiceCase& c = GetParam();
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    DriverOptions options;
    options.seed = seed;
    options.ticks = 96;
    options.starts_per_tick = 1.5 + 0.01 * static_cast<double>(seed % 7);
    options.max_interval = 200;
    auto service = c.make();
    const DriverReport report = RunDifferential(*service, options);
    ASSERT_TRUE(report.ok) << c.label << " seed " << seed << ": "
                           << report.divergence;
    ASSERT_GT(report.starts, 0u) << c.label << " seed " << seed << ": vacuous";
  }
}

// Episodes with the full re-entrancy alphabet enabled, for every implementation
// whose handler contract permits calling back into the service.
TEST_P(ModelCheckTest, ReentrantEpisodesMatchOracle) {
  const ServiceCase& c = GetParam();
  if (!c.handlers_may_reenter) {
    GTEST_SKIP() << c.label << " runs handlers under its lock (by design)";
  }
  for (std::uint64_t seed = 1000; seed < 1040; ++seed) {
    DriverOptions options;
    options.seed = seed;
    options.ticks = 96;
    options.max_interval = 200;
    options.rearm_probability = 0.3;
    options.stop_sibling_probability = 0.3;
    options.start_next_tick_probability = 0.2;
    options.self_poke_probability = 0.5;
    auto service = c.make();
    const DriverReport report = RunDifferential(*service, options);
    ASSERT_TRUE(report.ok) << c.label << " seed " << seed << ": "
                           << report.divergence;
    // The alphabet must actually have been exercised, not just configured.
    EXPECT_GT(report.handler_rearms + report.handler_sibling_stops +
                  report.handler_next_tick_starts,
              0u)
        << c.label << " seed " << seed;
  }
}

// High-churn episodes: bursty arrivals and aggressive cancellation recycle arena
// slots rapidly, so the stale-handle pokes hit recently reused slots — the exact
// situation generation counters exist for.
TEST_P(ModelCheckTest, ChurnEpisodesKeepHandlesSafe) {
  const ServiceCase& c = GetParam();
  for (std::uint64_t seed = 2000; seed < 2020; ++seed) {
    DriverOptions options;
    options.seed = seed;
    options.ticks = 128;
    options.starts_per_tick = 4.0;
    options.min_interval = 1;
    options.max_interval = 24;  // short fuses: constant expiry + recycling
    options.stop_probability = 0.8;
    options.stale_poke_probability = 1.0;
    auto service = c.make();
    const DriverReport report = RunDifferential(*service, options);
    ASSERT_TRUE(report.ok) << c.label << " seed " << seed << ": "
                           << report.divergence;
    EXPECT_GT(report.stale_pokes, 0u) << c.label << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(AllImplementations, ModelCheckTest,
                         ::testing::ValuesIn(AllServiceCases()),
                         [](const ::testing::TestParamInfo<ServiceCase>& param) {
                           return param.param.label;
                         });

}  // namespace
}  // namespace twheel::verify
