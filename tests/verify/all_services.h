// Shared enumeration of every TimerService implementation in the repository, for
// the model-checking suite: the seven schemes (with every variant the facade
// exposes), the global-lock wrapper, and the sharded wheel in one- and multi-shard
// configurations. Configurations mirror tests/integration/differential_test.cc:
// spans comfortably exceed the driver's default max_interval of 300.

#ifndef TWHEEL_TESTS_VERIFY_ALL_SERVICES_H_
#define TWHEEL_TESTS_VERIFY_ALL_SERVICES_H_

#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "src/concurrent/locked_service.h"
#include "src/concurrent/sharded_wheel.h"
#include "src/core/hashed_wheel_unsorted.h"
#include "src/core/timer_facility.h"

namespace twheel::verify_tests {

struct ServiceCase {
  std::string label;  // gtest-safe: alphanumerics and underscores only
  std::function<std::unique_ptr<TimerService>()> make;
  // LockedService dispatches expiry handlers while holding its global lock, so
  // in-handler re-entrancy would self-deadlock by documented design.
  bool handlers_may_reenter = true;
};

// Keeps gtest's parametrized test listings readable (label, not raw bytes).
inline void PrintTo(const ServiceCase& c, std::ostream* os) { *os << c.label; }

inline FacilityConfig VerifyConfig(SchemeId id) {
  FacilityConfig config;
  config.scheme = id;
  config.wheel_size = id == SchemeId::kScheme4BasicWheel ? 512 : 64;
  config.level_sizes = {16, 16, 16};
  return config;
}

inline std::vector<ServiceCase> AllServiceCases() {
  std::vector<ServiceCase> cases;
  for (SchemeId id : kAllSchemes) {
    std::string label = SchemeName(id);
    for (char& c : label) {
      if (c == '-') {
        c = '_';
      }
    }
    cases.push_back(
        {label, [id] { return MakeTimerService(VerifyConfig(id)); }, true});
  }
  cases.push_back({"locked_scheme6",
                   [] {
                     return std::make_unique<concurrent::LockedService>(
                         std::make_unique<HashedWheelUnsorted>(64));
                   },
                   /*handlers_may_reenter=*/false});
  cases.push_back({"locked_scheme2",
                   [] {
                     return std::make_unique<concurrent::LockedService>(
                         MakeTimerService(VerifyConfig(SchemeId::kScheme2SortedFront)));
                   },
                   /*handlers_may_reenter=*/false});
  cases.push_back(
      {"sharded_1x64",
       [] { return std::make_unique<concurrent::ShardedWheel>(1, 64); }, true});
  cases.push_back(
      {"sharded_4x64",
       [] { return std::make_unique<concurrent::ShardedWheel>(4, 64); }, true});
  cases.push_back(
      {"sharded_8x32",
       [] { return std::make_unique<concurrent::ShardedWheel>(8, 32); }, true});
  // Deferred-registration (MPSC) mode. Driven single-threaded it must be
  // observationally equivalent to the locked mode — every command drains before
  // the clock moves — so it joins the full matrix, re-entrancy included.
  // Capacities are generous: the oracle models no capacity limit, so a
  // kNoCapacity reject on one side only would (correctly) read as divergence.
  const auto verify_submit = [] {
    concurrent::SubmitOptions submit;
    submit.ring_capacity = 8192;
    submit.registration_capacity = 8192;
    submit.on_full = concurrent::SubmitPolicy::kReject;
    return submit;
  };
  cases.push_back({"sharded_mpsc_1x64",
                   [verify_submit] {
                     return std::make_unique<concurrent::ShardedWheel>(
                         1, 64, verify_submit());
                   },
                   true});
  cases.push_back({"sharded_mpsc_4x64",
                   [verify_submit] {
                     return std::make_unique<concurrent::ShardedWheel>(
                         4, 64, verify_submit());
                   },
                   true});
  return cases;
}

}  // namespace twheel::verify_tests

#endif  // TWHEEL_TESTS_VERIFY_ALL_SERVICES_H_
