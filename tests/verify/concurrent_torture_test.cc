// Concurrent torture suite: N producer threads race StartTimer/StopTimer
// against a concurrently advancing ShardedWheel (locked and MPSC modes), and
// the episode logs are checked against the deferred-visibility contract — see
// src/verify/concurrent_driver.h for the invariants and the three modes.
//
// Episode count is env-tunable: TWHEEL_TORTURE_EPISODES (default 50 per
// producer count). scripts/verify.sh reduces it under sanitizers, where each
// episode costs ~20x. All tests carry the ctest label `torture`.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>

#include "src/concurrent/sharded_wheel.h"
#include "src/verify/concurrent_driver.h"

namespace twheel::verify {
namespace {

std::size_t Episodes(std::size_t scale_down = 1) {
  std::size_t episodes = 50;
  if (const char* env = std::getenv("TWHEEL_TORTURE_EPISODES")) {
    const long parsed = std::atol(env);
    if (parsed > 0) {
      episodes = static_cast<std::size_t>(parsed);
    }
  }
  return std::max<std::size_t>(1, episodes / scale_down);
}

concurrent::SubmitOptions Submit(std::size_t ring, std::size_t table,
                                 concurrent::SubmitPolicy policy) {
  concurrent::SubmitOptions submit;
  submit.ring_capacity = ring;
  submit.registration_capacity = table;
  submit.on_full = policy;
  return submit;
}

constexpr std::size_t kProducerCounts[] = {1, 2, 4};

TortureOptions BaseOptions(std::uint64_t seed, std::size_t producers) {
  TortureOptions options;
  options.seed = seed;
  options.producers = producers;
  options.ops_per_producer = 256;
  options.max_interval = 64;
  options.race_ticks = 128;
  return options;
}

TEST(ConcurrentTortureTest, ManualRaceMpsc) {
  const std::size_t episodes = Episodes();
  for (std::size_t producers : kProducerCounts) {
    for (std::size_t ep = 0; ep < episodes; ++ep) {
      concurrent::ShardedWheel wheel(
          4, 64, Submit(8192, 8192, concurrent::SubmitPolicy::kReject));
      TortureOptions options = BaseOptions(1000 + ep, producers);
      options.mode = TortureMode::kManualRace;
      const TortureReport report = RunTorture(wheel, options);
      ASSERT_TRUE(report.ok) << "producers=" << producers << " episode=" << ep
                             << ": " << report.violation;
      ASSERT_EQ(report.start_rejects, 0u) << "generous capacity still rejected";
    }
  }
}

TEST(ConcurrentTortureTest, ManualRaceMpscSpinBackpressure) {
  // A deliberately tiny ring under kSpin: producers block on the drainer, so
  // every episode exercises the full-ring path; no operation may be lost.
  const std::size_t episodes = Episodes(2);
  for (std::size_t producers : kProducerCounts) {
    for (std::size_t ep = 0; ep < episodes; ++ep) {
      concurrent::ShardedWheel wheel(
          1, 64, Submit(64, 4096, concurrent::SubmitPolicy::kSpin));
      TortureOptions options = BaseOptions(2000 + ep, producers);
      options.mode = TortureMode::kManualRace;
      const TortureReport report = RunTorture(wheel, options);
      ASSERT_TRUE(report.ok) << "producers=" << producers << " episode=" << ep
                             << ": " << report.violation;
      ASSERT_EQ(report.start_rejects, 0u) << "kSpin must never reject";
    }
  }
}

TEST(ConcurrentTortureTest, ManualRaceMpscRejectBackpressure) {
  // Tiny ring under kReject: rejects are expected and legal; every *accepted*
  // operation must still satisfy the invariants.
  const std::size_t episodes = Episodes(2);
  for (std::size_t producers : kProducerCounts) {
    for (std::size_t ep = 0; ep < episodes; ++ep) {
      concurrent::ShardedWheel wheel(
          1, 64, Submit(32, 4096, concurrent::SubmitPolicy::kReject));
      TortureOptions options = BaseOptions(3000 + ep, producers);
      options.mode = TortureMode::kManualRace;
      const TortureReport report = RunTorture(wheel, options);
      ASSERT_TRUE(report.ok) << "producers=" << producers << " episode=" << ep
                             << ": " << report.violation;
    }
  }
}

TEST(ConcurrentTortureTest, ManualRaceLockedSharded) {
  // The driver's invariants hold for immediate-visibility services too; running
  // the locked wheel through the same harness cross-checks the checker itself.
  const std::size_t episodes = Episodes(2);
  for (std::size_t producers : kProducerCounts) {
    for (std::size_t ep = 0; ep < episodes; ++ep) {
      concurrent::ShardedWheel wheel(4, 64);
      TortureOptions options = BaseOptions(4000 + ep, producers);
      options.mode = TortureMode::kManualRace;
      const TortureReport report = RunTorture(wheel, options);
      ASSERT_TRUE(report.ok) << "producers=" << producers << " episode=" << ep
                             << ": " << report.violation;
    }
  }
}

TEST(ConcurrentTortureTest, TickerRaceMpsc) {
  // Wall-clock-driven episodes are slower; cap the count but keep all producer
  // counts — the TickerThread chunked catch-up path versus live producers is
  // the deployment configuration.
  const std::size_t episodes = std::min<std::size_t>(Episodes(5), 10);
  for (std::size_t producers : kProducerCounts) {
    for (std::size_t ep = 0; ep < episodes; ++ep) {
      concurrent::ShardedWheel wheel(
          4, 64, Submit(8192, 8192, concurrent::SubmitPolicy::kSpin));
      TortureOptions options = BaseOptions(5000 + ep, producers);
      options.mode = TortureMode::kTickerRace;
      options.ticker_period_us = 20;
      // Longer producer runs so starts, cancels, and wall-clock-driven expiries
      // genuinely overlap inside the episode.
      options.ops_per_producer = 2048;
      const TortureReport report = RunTorture(wheel, options);
      ASSERT_TRUE(report.ok) << "producers=" << producers << " episode=" << ep
                             << ": " << report.violation;
    }
  }
}

TEST(ConcurrentTortureTest, LockstepOracleMpsc) {
  // The exact differential mode: genuine MPSC contention inside each frozen
  // enqueue phase, then call-for-call replay into OracleTimers and per-tick
  // multiset comparison across the advance.
  const std::size_t episodes = Episodes(2);
  for (std::size_t producers : kProducerCounts) {
    for (std::size_t ep = 0; ep < episodes; ++ep) {
      concurrent::ShardedWheel wheel(
          2, 64, Submit(8192, 8192, concurrent::SubmitPolicy::kReject));
      TortureOptions options = BaseOptions(6000 + ep, producers);
      options.mode = TortureMode::kLockstepOracle;
      options.ops_per_producer = 48;
      options.rounds = 12;
      const TortureReport report = RunTorture(wheel, options);
      ASSERT_TRUE(report.ok) << "producers=" << producers << " episode=" << ep
                             << ": " << report.violation;
    }
  }
}

TEST(ConcurrentTortureTest, LockstepOracleLockedSharded) {
  const std::size_t episodes = Episodes(4);
  for (std::size_t producers : kProducerCounts) {
    for (std::size_t ep = 0; ep < episodes; ++ep) {
      concurrent::ShardedWheel wheel(2, 64);
      TortureOptions options = BaseOptions(7000 + ep, producers);
      options.mode = TortureMode::kLockstepOracle;
      options.ops_per_producer = 48;
      options.rounds = 12;
      const TortureReport report = RunTorture(wheel, options);
      ASSERT_TRUE(report.ok) << "producers=" << producers << " episode=" << ep
                             << ": " << report.violation;
    }
  }
}

}  // namespace
}  // namespace twheel::verify
