// Regression pins for the in-place RestartTimer overrides.
//
// The sharpest hazard for the wheels is occupancy-bitmap staleness: a restart
// unlinks the record from its old slot, and when that drain empties the slot
// the bitmap bit must be cleared — otherwise AdvanceTo stops at the dead slot
// and NextExpiryHint reports a phantom expiry at the old deadline. The tests
// pin the exact-hint contract (all five wheel schemes have exact hints in
// their default configurations) before and after restarts that drain a slot
// fully, partially, and across batched advances; plus the OpCounts
// conservation law (a restart is neither a start nor a cancel) on every
// scheme, and the fires-exactly-once-at-the-new-deadline property for the
// ShardedWheel in locked and deferred modes.

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "src/concurrent/sharded_wheel.h"
#include "src/core/timer_facility.h"
#include "tests/verify/all_services.h"

namespace twheel {
namespace {

using verify_tests::VerifyConfig;

constexpr SchemeId kWheelSchemes[] = {
    SchemeId::kScheme4BasicWheel,   SchemeId::kScheme4HybridList,
    SchemeId::kScheme5HashedSorted, SchemeId::kScheme6HashedUnsorted,
    SchemeId::kScheme7Hierarchical,
};

struct Fired {
  std::vector<std::pair<Tick, RequestId>> events;
  void Install(TimerService& s) {
    s.set_expiry_handler([this](RequestId id, Tick when) {
      events.emplace_back(when, id);
    });
  }
};

// A restart that drains its slot to empty must clear the occupancy bit: the
// hint moves to the new deadline (no phantom at the old one) and a batched
// advance over the old deadline dispatches nothing.
TEST(RestartBitmapTest, SlotDrainedByRestartIsSkipped) {
  for (SchemeId id : kWheelSchemes) {
    auto service = MakeTimerService(VerifyConfig(id));
    Fired fired;
    fired.Install(*service);

    TimerHandle h = service->StartTimer(10, 1).value();
    ASSERT_EQ(service->NextExpiryHint(), std::optional<Tick>{10})
        << service->name();

    // Slot for tick 10 drains to empty; the timer now lives at tick 200.
    ASSERT_EQ(service->RestartTimer(h, 200), TimerError::kOk) << service->name();
    EXPECT_EQ(service->NextExpiryHint(), std::optional<Tick>{200})
        << service->name() << ": phantom expiry from a stale occupancy bit";

    EXPECT_EQ(service->AdvanceTo(199), 0u)
        << service->name() << ": fired crossing the drained slot";
    EXPECT_TRUE(fired.events.empty()) << service->name();

    EXPECT_EQ(service->AdvanceTo(200), 1u) << service->name();
    ASSERT_EQ(fired.events.size(), 1u) << service->name();
    EXPECT_EQ(fired.events[0], (std::pair<Tick, RequestId>{200, 1}))
        << service->name();
    EXPECT_EQ(service->outstanding(), 0u) << service->name();
  }
}

// Partial drain: two timers share the slot, one is restarted away. The bit
// must STAY set (the sibling still lives there) and the sibling still fires on
// time; the relinked timer fires once at its new deadline.
TEST(RestartBitmapTest, PartialDrainKeepsSlotOccupied) {
  for (SchemeId id : kWheelSchemes) {
    auto service = MakeTimerService(VerifyConfig(id));
    Fired fired;
    fired.Install(*service);

    TimerHandle a = service->StartTimer(10, 1).value();
    TimerHandle b = service->StartTimer(10, 2).value();
    (void)b;
    ASSERT_EQ(service->RestartTimer(a, 200), TimerError::kOk) << service->name();

    ASSERT_EQ(service->NextExpiryHint(), std::optional<Tick>{10})
        << service->name() << ": sibling's slot went dark";
    EXPECT_EQ(service->AdvanceTo(10), 1u) << service->name();
    ASSERT_EQ(fired.events.size(), 1u) << service->name();
    EXPECT_EQ(fired.events[0], (std::pair<Tick, RequestId>{10, 2}))
        << service->name();

    EXPECT_EQ(service->NextExpiryHint(), std::optional<Tick>{200})
        << service->name();
    EXPECT_EQ(service->AdvanceTo(200), 1u) << service->name();
    EXPECT_EQ(fired.events.back(), (std::pair<Tick, RequestId>{200, 1}))
        << service->name();
  }
}

// Restarting INTO the current bucket residue (new interval == table size for
// the hashed wheels) must not fire early: the relinked timer needs one full
// lap even though its slot index equals the one just swept.
TEST(RestartBitmapTest, RestartByTableSizeTakesAFullLap) {
  for (SchemeId id : {SchemeId::kScheme5HashedSorted,
                      SchemeId::kScheme6HashedUnsorted}) {
    auto service = MakeTimerService(VerifyConfig(id));  // 64-slot table
    Fired fired;
    fired.Install(*service);

    TimerHandle h = service->StartTimer(5, 1).value();
    EXPECT_EQ(service->AdvanceTo(3), 0u);
    // now == 3: relink to 3 + 64, the slot the cursor visits next lap.
    ASSERT_EQ(service->RestartTimer(h, 64), TimerError::kOk) << service->name();
    EXPECT_EQ(service->NextExpiryHint(), std::optional<Tick>{67})
        << service->name();
    EXPECT_EQ(service->AdvanceTo(66), 0u)
        << service->name() << ": fired a lap early after restart";
    EXPECT_EQ(service->AdvanceTo(67), 1u) << service->name();
    ASSERT_EQ(fired.events.size(), 1u) << service->name();
    EXPECT_EQ(fired.events[0], (std::pair<Tick, RequestId>{67, 1}))
        << service->name();
  }
}

// OpCounts conservation: start_calls == expiries + successful cancels +
// outstanding, with restarts contributing to restart_calls only. Every scheme,
// scripted with no rejected calls so the law is exact.
TEST(RestartCountsTest, ConservationHoldsAcrossRestarts) {
  for (const auto& c : verify_tests::AllServiceCases()) {
    auto service = c.make();
    Fired fired;
    fired.Install(*service);

    std::vector<TimerHandle> handles;
    for (RequestId i = 0; i < 8; ++i) {
      handles.push_back(service->StartTimer(20 + i, i).value());
    }
    // Three in-place restarts (one timer twice), two cancels.
    ASSERT_EQ(service->RestartTimer(handles[0], 40), TimerError::kOk) << c.label;
    ASSERT_EQ(service->RestartTimer(handles[0], 55), TimerError::kOk) << c.label;
    ASSERT_EQ(service->RestartTimer(handles[3], 90), TimerError::kOk) << c.label;
    ASSERT_EQ(service->StopTimer(handles[1]), TimerError::kOk) << c.label;
    ASSERT_EQ(service->StopTimer(handles[5]), TimerError::kOk) << c.label;

    const metrics::OpCounts mid = service->counts();
    EXPECT_EQ(mid.restart_calls, 3u) << c.label;
    EXPECT_EQ(mid.start_calls, mid.expiries + 2u + service->outstanding())
        << c.label << ": restart leaked into the conservation law";

    // Drain: the restarted timers fire at their relinked deadlines only.
    for (int t = 0; t < 128; ++t) {
      service->PerTickBookkeeping();
    }
    const metrics::OpCounts end = service->counts();
    EXPECT_EQ(service->outstanding(), 0u) << c.label;
    EXPECT_EQ(end.start_calls, end.expiries + 2u) << c.label;
    EXPECT_EQ(end.expiries, 6u) << c.label;
    EXPECT_EQ(fired.events.size(), 6u) << c.label;
    for (const auto& [when, req_id] : fired.events) {
      EXPECT_NE(req_id, 1u) << c.label << ": cancelled timer fired";
      EXPECT_NE(req_id, 5u) << c.label << ": cancelled timer fired";
      if (req_id == 0) {
        EXPECT_EQ(when, 55u) << c.label << ": fired at a superseded deadline";
      }
      if (req_id == 3) {
        EXPECT_EQ(when, 90u) << c.label << ": fired at the old deadline";
      }
    }
  }
}

// ShardedWheel, locked and deferred: a restarted timer never fires at its old
// deadline and fires exactly once at the new one, with restart_calls surfaced
// through the merged counts().
TEST(RestartShardedTest, RestartedTimerFiresOnceAtNewDeadline) {
  const auto run = [](concurrent::ShardedWheel& wheel, const char* label) {
    Fired fired;
    fired.Install(wheel);
    TimerHandle h = wheel.StartTimer(10, 7).value();
    wheel.DrainSubmissions();
    ASSERT_EQ(wheel.RestartTimer(h, 200), TimerError::kOk) << label;
    EXPECT_EQ(wheel.AdvanceTo(199), 0u)
        << label << ": fired at the pre-restart deadline";
    EXPECT_TRUE(fired.events.empty()) << label;
    EXPECT_EQ(wheel.AdvanceTo(220), 1u) << label;
    ASSERT_EQ(fired.events.size(), 1u) << label;
    EXPECT_EQ(fired.events[0].second, 7u) << label;
    EXPECT_EQ(wheel.counts().restart_calls, 1u) << label;
    EXPECT_EQ(wheel.outstanding(), 0u) << label;
  };

  concurrent::ShardedWheel locked(4, 64);
  run(locked, "locked");

  concurrent::SubmitOptions submit;
  submit.ring_capacity = 1024;
  submit.registration_capacity = 1024;
  submit.on_full = concurrent::SubmitPolicy::kReject;
  concurrent::ShardedWheel deferred(4, 64, submit);
  run(deferred, "deferred");
}

}  // namespace
}  // namespace twheel
