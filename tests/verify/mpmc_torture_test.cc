// MPMC torture suite: producers race the full alphabet (start / stop /
// restart / periodic) while a DispatchPool advances and delivers the shards
// from several drainer threads at once — the pool modes of the concurrent
// torture driver (kMultiTicker, kStealStorm; see src/verify/concurrent_driver.h
// for the invariants that survive concurrent dispatch and how the vacuous
// global-order checks are replaced by the wheel's own per-shard certification).
//
// Episode count is env-tunable: TWHEEL_TORTURE_EPISODES (default 50 per
// drainer count). scripts/verify.sh reduces it under sanitizers, where each
// episode costs ~20x. All tests carry the ctest labels `mpmc` and `torture`.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>

#include "src/concurrent/sharded_wheel.h"
#include "src/core/hashed_wheel_unsorted.h"
#include "src/verify/concurrent_driver.h"

namespace twheel::verify {
namespace {

std::size_t Episodes(std::size_t scale_down = 1) {
  std::size_t episodes = 50;
  if (const char* env = std::getenv("TWHEEL_TORTURE_EPISODES")) {
    const long parsed = std::atol(env);
    if (parsed > 0) {
      episodes = static_cast<std::size_t>(parsed);
    }
  }
  return std::max<std::size_t>(1, episodes / scale_down);
}

concurrent::SubmitOptions Submit(std::size_t ring, std::size_t table,
                                 concurrent::SubmitPolicy policy) {
  concurrent::SubmitOptions submit;
  submit.ring_capacity = ring;
  submit.registration_capacity = table;
  submit.on_full = policy;
  return submit;
}

constexpr std::size_t kDrainerCounts[] = {1, 2, 4};

// The full alphabet is always on: restart-vs-steal and periodic-re-arm-vs-steal
// are exactly the races this suite exists to grind.
TortureOptions BaseOptions(std::uint64_t seed, std::size_t drainers) {
  TortureOptions options;
  options.seed = seed;
  options.producers = 3;
  options.ops_per_producer = 256;
  options.max_interval = 64;
  options.race_ticks = 128;
  options.restart_probability = 0.15;
  options.periodic_probability = 0.15;
  options.periodic_repeat_max = 3;
  options.drainers = drainers;
  options.pool_chunk_ticks = 16;
  return options;
}

TEST(MpmcTortureTest, MultiTickerMpsc) {
  // N per-shard tickers: wall-clock-driven, so cap the episode count the way
  // TickerRaceMpsc does, but sweep the drainer counts — 1 drainer degenerates
  // to the single-ticker deployment (a soundness baseline for the checker),
  // 4 drainers on 4 shards is one ticker per shard.
  const std::size_t episodes = std::min<std::size_t>(Episodes(5), 10);
  for (std::size_t drainers : kDrainerCounts) {
    for (std::size_t ep = 0; ep < episodes; ++ep) {
      concurrent::ShardedWheel wheel(
          4, 64, Submit(8192, 8192, concurrent::SubmitPolicy::kSpin));
      TortureOptions options = BaseOptions(11000 + ep, drainers);
      options.mode = TortureMode::kMultiTicker;
      options.pool_period_us = 20;
      options.ops_per_producer = 2048;
      const TortureReport report = RunTorture(wheel, options);
      ASSERT_TRUE(report.ok) << "drainers=" << drainers << " episode=" << ep
                             << ": " << report.violation;
    }
  }
}

TEST(MpmcTortureTest, StealStormMpsc) {
  // Manual-mode pool slammed with bursty AdvanceTo jumps: every jump publishes
  // expiry batches across all shards at once, so the non-advancing drainers
  // spend the episode stealing. Deterministic enough to run at full episode
  // count.
  const std::size_t episodes = Episodes();
  for (std::size_t drainers : kDrainerCounts) {
    for (std::size_t ep = 0; ep < episodes; ++ep) {
      concurrent::ShardedWheel wheel(
          4, 64, Submit(8192, 8192, concurrent::SubmitPolicy::kReject));
      TortureOptions options = BaseOptions(12000 + ep, drainers);
      options.mode = TortureMode::kStealStorm;
      const TortureReport report = RunTorture(wheel, options);
      ASSERT_TRUE(report.ok) << "drainers=" << drainers << " episode=" << ep
                             << ": " << report.violation;
      ASSERT_EQ(report.start_rejects, 0u) << "generous capacity still rejected";
      if (report.fires > 0) {
        EXPECT_GT(report.dispatch_batches, 0u)
            << "pool delivered fires without publishing batches";
      }
    }
  }
}

TEST(MpmcTortureTest, StealStormSpinBackpressure) {
  // Tiny ring under kSpin: producers block on the drain inside AdvanceShard,
  // so ring-full stalls interleave with concurrent batch dispatch and steals.
  const std::size_t episodes = Episodes(2);
  for (std::size_t ep = 0; ep < episodes; ++ep) {
    concurrent::ShardedWheel wheel(
        2, 64, Submit(64, 4096, concurrent::SubmitPolicy::kSpin));
    TortureOptions options = BaseOptions(13000 + ep, 2);
    options.mode = TortureMode::kStealStorm;
    const TortureReport report = RunTorture(wheel, options);
    ASSERT_TRUE(report.ok) << "episode=" << ep << ": " << report.violation;
    ASSERT_EQ(report.start_rejects, 0u) << "kSpin must never reject";
  }
}

TEST(MpmcTortureTest, StealStormRejectBackpressure) {
  // Tiny ring under kReject: rejects are expected and legal; every *accepted*
  // operation must still resolve exactly once under concurrent dispatch.
  const std::size_t episodes = Episodes(2);
  for (std::size_t ep = 0; ep < episodes; ++ep) {
    concurrent::ShardedWheel wheel(
        2, 64, Submit(32, 4096, concurrent::SubmitPolicy::kReject));
    TortureOptions options = BaseOptions(14000 + ep, 4);
    options.mode = TortureMode::kStealStorm;
    const TortureReport report = RunTorture(wheel, options);
    ASSERT_TRUE(report.ok) << "episode=" << ep << ": " << report.violation;
  }
}

TEST(MpmcTortureTest, StealStormSurplusDrainers) {
  // More drainers than shards: the surplus threads own nothing and act as
  // pure stealers, maximizing contention on the per-shard dispatch rights.
  const std::size_t episodes = Episodes(2);
  for (std::size_t ep = 0; ep < episodes; ++ep) {
    concurrent::ShardedWheel wheel(
        2, 64, Submit(8192, 8192, concurrent::SubmitPolicy::kReject));
    TortureOptions options = BaseOptions(15000 + ep, 6);
    options.mode = TortureMode::kStealStorm;
    const TortureReport report = RunTorture(wheel, options);
    ASSERT_TRUE(report.ok) << "episode=" << ep << ": " << report.violation;
  }
}

TEST(MpmcTortureTest, StealStormNoSteal) {
  // steal=false isolates the split advance/dispatch protocol itself: owners
  // deliver their own batches, so any failure here is in the batch pipeline,
  // not the stealing. dispatch_steals must stay exactly zero.
  const std::size_t episodes = Episodes(2);
  for (std::size_t ep = 0; ep < episodes; ++ep) {
    concurrent::ShardedWheel wheel(
        4, 64, Submit(8192, 8192, concurrent::SubmitPolicy::kReject));
    TortureOptions options = BaseOptions(16000 + ep, 2);
    options.mode = TortureMode::kStealStorm;
    options.steal = false;
    const TortureReport report = RunTorture(wheel, options);
    ASSERT_TRUE(report.ok) << "episode=" << ep << ": " << report.violation;
    EXPECT_EQ(report.dispatch_steals, 0u)
        << "steal=false pool still stole a batch";
  }
}

TEST(MpmcTortureTest, PoolModesRejectNonShardedServices) {
  // The pool modes need AdvanceShard/DispatchShard; any other service must be
  // refused with a clean report, not UB.
  HashedWheelUnsorted not_sharded(64);
  TortureOptions options = BaseOptions(1, 2);
  options.mode = TortureMode::kStealStorm;
  const TortureReport report = RunTorture(not_sharded, options);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.violation.find("ShardedWheel"), std::string::npos)
      << report.violation;
}

}  // namespace
}  // namespace twheel::verify
