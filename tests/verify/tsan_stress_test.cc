// Thread-interleaving stress for the concurrent layer, written to be run under
// TSan (-DTWHEEL_SANITIZE=thread, see scripts/verify.sh) but meaningful — and
// checked functionally — in every build mode.
//
// The hot configuration is the one Appendix A.2 recommends: a ShardedWheel
// driven by a wall-clock TickerThread while several mutator threads start and
// stop timers, observer threads snapshot counts()/outstanding()/now(), and an
// extra thread issues overlapping PerTickBookkeeping calls of its own (two
// simultaneous tickers are legal: shard locks serialize per-shard sweeps and
// expiry dispatch happens outside all locks). Every timer started must be
// accounted for as exactly one of {fired, cancelled} by the end.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/concurrent/locked_service.h"
#include "src/concurrent/sharded_wheel.h"
#include "src/concurrent/ticker.h"
#include "src/core/hashed_wheel_unsorted.h"

namespace twheel::concurrent {
namespace {

TEST(TsanStressTest, ShardedWheelUnderTickerAndMutators) {
  ShardedWheel wheel(8, 64);
  std::atomic<std::uint64_t> fired{0};
  wheel.set_expiry_handler([&](RequestId, Tick) {
    fired.fetch_add(1, std::memory_order_relaxed);
  });

  std::atomic<std::uint64_t> started{0};
  std::atomic<std::uint64_t> cancelled{0};
  std::atomic<bool> stop{false};

  TickerThread ticker(wheel, std::chrono::microseconds(200));

  // A second, manual ticker: overlapping bookkeeping calls must stay safe.
  std::thread second_ticker([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      wheel.PerTickBookkeeping();
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  std::vector<std::thread> mutators;
  for (int t = 0; t < 4; ++t) {
    mutators.emplace_back([&, t] {
      for (int i = 0; i < 4000; ++i) {
        const auto id = (static_cast<RequestId>(t) << 32) | static_cast<RequestId>(i);
        auto r = wheel.StartTimer(1 + (i % 60), id);
        ASSERT_TRUE(r.has_value());
        started.fetch_add(1, std::memory_order_relaxed);
        if (i % 3 == 0 &&
            wheel.StopTimer(r.value()) == TimerError::kOk) {
          cancelled.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::vector<std::thread> observers;
  for (int t = 0; t < 2; ++t) {
    observers.emplace_back([&] {
      std::uint64_t last_ticks = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const metrics::OpCounts snapshot = wheel.counts();
        EXPECT_GE(snapshot.ticks, last_ticks);
        last_ticks = snapshot.ticks;
        (void)wheel.outstanding();
        (void)wheel.now();
        (void)wheel.Space();
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }

  for (auto& m : mutators) {
    m.join();
  }
  // Drain: everything still live is at most 60 ticks out.
  for (int i = 0; i < 200; ++i) {
    wheel.PerTickBookkeeping();
  }
  stop.store(true);
  for (auto& o : observers) {
    o.join();
  }
  second_ticker.join();
  ticker.Stop();

  EXPECT_EQ(fired.load() + cancelled.load(), started.load());
  EXPECT_EQ(wheel.outstanding(), 0u);
}

// The same shape around the global-lock wrapper (handlers stay trivial: they run
// under the wrapper's lock).
TEST(TsanStressTest, LockedServiceUnderTickerAndMutators) {
  LockedService service(std::make_unique<HashedWheelUnsorted>(64));
  std::atomic<std::uint64_t> fired{0};
  service.set_expiry_handler([&](RequestId, Tick) {
    fired.fetch_add(1, std::memory_order_relaxed);
  });

  std::atomic<std::uint64_t> started{0};
  std::atomic<std::uint64_t> cancelled{0};

  {
    TickerThread ticker(service, std::chrono::microseconds(200));
    std::vector<std::thread> mutators;
    for (int t = 0; t < 3; ++t) {
      mutators.emplace_back([&, t] {
        for (int i = 0; i < 2000; ++i) {
          const auto id = (static_cast<RequestId>(t) << 32) | static_cast<RequestId>(i);
          auto r = service.StartTimer(1 + (i % 40), id);
          ASSERT_TRUE(r.has_value());
          started.fetch_add(1, std::memory_order_relaxed);
          if (i % 4 == 0 &&
              service.StopTimer(r.value()) == TimerError::kOk) {
            cancelled.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& m : mutators) {
      m.join();
    }
    for (int i = 0; i < 100; ++i) {
      service.PerTickBookkeeping();
    }
    ticker.Stop();
  }

  EXPECT_EQ(fired.load() + cancelled.load(), started.load());
  EXPECT_EQ(service.outstanding(), 0u);
}

}  // namespace
}  // namespace twheel::concurrent
