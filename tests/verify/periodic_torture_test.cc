// Concurrent periodic torture: producer threads race StartPeriodic-registered
// timers against fires, cancels, restarts, and each other on the ShardedWheel
// (locked and MPSC deferred modes). The driver (src/verify/concurrent_driver.h)
// checks the periodic-specific invariants on top of the usual
// exactly-once/no-early-fire set:
//
//   * a periodic with a finite budget that is never cancelled delivers EXACTLY
//     that many laps — the expiry-path re-arm neither drops a lap nor double
//     fires one, no matter how the re-arm races cancels and restarts;
//   * a kOk cancel between fires ends the series as a strict prefix of the
//     budget: the FINAL lap claims the registration, so it can never coexist
//     with a successful cancel;
//   * laps of a never-restarted periodic are spaced exactly one period apart
//     (phase stability under contention and batched AdvanceTo catch-up);
//   * in lockstep mode StartPeriodic/StopTimer/RestartTimer results and the
//     per-tick lap multisets replay call-for-call into OracleTimers.
//
// Episode count honors TWHEEL_TORTURE_EPISODES like the rest of the torture
// suite; scripts/verify.sh reduces it under sanitizers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "src/concurrent/sharded_wheel.h"
#include "src/verify/concurrent_driver.h"

namespace twheel::verify {
namespace {

std::size_t Episodes(std::size_t scale_down = 1) {
  std::size_t episodes = 50;
  if (const char* env = std::getenv("TWHEEL_TORTURE_EPISODES")) {
    const long parsed = std::atol(env);
    if (parsed > 0) {
      episodes = static_cast<std::size_t>(parsed);
    }
  }
  return std::max<std::size_t>(1, episodes / scale_down);
}

concurrent::SubmitOptions Submit(std::size_t ring, std::size_t table,
                                 concurrent::SubmitPolicy policy) {
  concurrent::SubmitOptions submit;
  submit.ring_capacity = ring;
  submit.registration_capacity = table;
  submit.on_full = policy;
  return submit;
}

constexpr std::size_t kProducerCounts[] = {1, 2, 4};

TortureOptions PeriodicOptions(std::uint64_t seed, std::size_t producers) {
  TortureOptions options;
  options.seed = seed;
  options.producers = producers;
  options.ops_per_producer = 256;
  options.max_interval = 48;
  options.race_ticks = 192;
  options.periodic_probability = 0.5;
  options.periodic_repeat_max = 5;
  options.stop_probability = 0.25;
  return options;
}

TEST(PeriodicTortureTest, ManualRaceMpscWithPeriodics) {
  const std::size_t episodes = Episodes();
  std::size_t laps = 0;
  for (std::size_t producers : kProducerCounts) {
    for (std::size_t ep = 0; ep < episodes; ++ep) {
      concurrent::ShardedWheel wheel(
          4, 64, Submit(8192, 8192, concurrent::SubmitPolicy::kReject));
      TortureOptions options = PeriodicOptions(20000 + ep, producers);
      options.mode = TortureMode::kManualRace;
      const TortureReport report = RunTorture(wheel, options);
      ASSERT_TRUE(report.ok) << "producers=" << producers << " episode=" << ep
                             << ": " << report.violation;
      laps += report.periodic_fires;
    }
  }
  EXPECT_GT(laps, 0u) << "periodic alphabet never exercised";
}

TEST(PeriodicTortureTest, ManualRaceMpscCancelChasesTheRearm) {
  // Short periods and a hot cancel mix: most cancels land close to (or racing)
  // a lap boundary, so the periodic-fire-vs-cancel referee in the registration
  // word is exercised constantly. A lost race in either direction shows up as
  // a budget overrun (lap after kOk cancel) or a wedged series (budget
  // underrun without a cancel).
  const std::size_t episodes = Episodes(2);
  std::size_t cancels = 0;
  for (std::size_t producers : kProducerCounts) {
    for (std::size_t ep = 0; ep < episodes; ++ep) {
      concurrent::ShardedWheel wheel(
          2, 32, Submit(8192, 8192, concurrent::SubmitPolicy::kReject));
      TortureOptions options = PeriodicOptions(21000 + ep, producers);
      options.mode = TortureMode::kManualRace;
      options.max_interval = 6;  // cancels chase the laps
      options.periodic_probability = 0.7;
      options.periodic_repeat_max = 8;
      options.stop_probability = 0.45;
      const TortureReport report = RunTorture(wheel, options);
      ASSERT_TRUE(report.ok) << "producers=" << producers << " episode=" << ep
                             << ": " << report.violation;
      cancels += report.cancels;
    }
  }
  EXPECT_GT(cancels, 0u) << "no cancel ever raced a lap";
}

TEST(PeriodicTortureTest, ManualRaceMpscRestartsAgainstPeriodics) {
  // Restart-of-periodic racing the expiry-path re-arm: the restart-counter
  // referee must resolve each lap exactly once even when a restart command and
  // a lap claim target the same registration word in the same window.
  const std::size_t episodes = Episodes(2);
  std::size_t restarts = 0;
  for (std::size_t producers : kProducerCounts) {
    for (std::size_t ep = 0; ep < episodes; ++ep) {
      concurrent::ShardedWheel wheel(
          4, 64, Submit(8192, 8192, concurrent::SubmitPolicy::kReject));
      TortureOptions options = PeriodicOptions(22000 + ep, producers);
      options.mode = TortureMode::kManualRace;
      options.max_interval = 12;
      options.restart_probability = 0.3;
      const TortureReport report = RunTorture(wheel, options);
      ASSERT_TRUE(report.ok) << "producers=" << producers << " episode=" << ep
                             << ": " << report.violation;
      restarts += report.restarts;
    }
  }
  EXPECT_GT(restarts, 0u) << "restart-of-periodic never exercised";
}

TEST(PeriodicTortureTest, ManualRaceMpscSpinBackpressureWithPeriodics) {
  // Tiny ring under kSpin: periodic registrations block on the drainer
  // alongside one-shots, cancels, and restarts; every accepted budget must
  // still be delivered exactly.
  const std::size_t episodes = Episodes(2);
  for (std::size_t producers : kProducerCounts) {
    for (std::size_t ep = 0; ep < episodes; ++ep) {
      concurrent::ShardedWheel wheel(
          1, 64, Submit(64, 4096, concurrent::SubmitPolicy::kSpin));
      TortureOptions options = PeriodicOptions(23000 + ep, producers);
      options.mode = TortureMode::kManualRace;
      const TortureReport report = RunTorture(wheel, options);
      ASSERT_TRUE(report.ok) << "producers=" << producers << " episode=" << ep
                             << ": " << report.violation;
    }
  }
}

TEST(PeriodicTortureTest, ManualRaceLockedShardedWithPeriodics) {
  // Immediate-visibility cross-check: the same invariants hold for the locked
  // wheel, validating the checker's lap accounting against a simpler service.
  const std::size_t episodes = Episodes(2);
  for (std::size_t producers : kProducerCounts) {
    for (std::size_t ep = 0; ep < episodes; ++ep) {
      concurrent::ShardedWheel wheel(4, 64);
      TortureOptions options = PeriodicOptions(24000 + ep, producers);
      options.mode = TortureMode::kManualRace;
      const TortureReport report = RunTorture(wheel, options);
      ASSERT_TRUE(report.ok) << "producers=" << producers << " episode=" << ep
                             << ": " << report.violation;
    }
  }
}

TEST(PeriodicTortureTest, TickerRaceMpscWithPeriodics) {
  const std::size_t episodes = std::min<std::size_t>(Episodes(5), 10);
  for (std::size_t producers : kProducerCounts) {
    for (std::size_t ep = 0; ep < episodes; ++ep) {
      concurrent::ShardedWheel wheel(
          4, 64, Submit(8192, 8192, concurrent::SubmitPolicy::kSpin));
      TortureOptions options = PeriodicOptions(25000 + ep, producers);
      options.mode = TortureMode::kTickerRace;
      options.ticker_period_us = 20;
      options.ops_per_producer = 2048;
      const TortureReport report = RunTorture(wheel, options);
      ASSERT_TRUE(report.ok) << "producers=" << producers << " episode=" << ep
                             << ": " << report.violation;
    }
  }
}

TEST(PeriodicTortureTest, LockstepOracleMpscReplaysPeriodics) {
  // Call-for-call periodic replay into OracleTimers under genuine MPSC
  // contention inside each frozen enqueue phase: results, per-tick lap
  // multisets, clocks, and outstanding() must match exactly through every
  // re-arm, cancel-between-fires, and restart-of-periodic.
  const std::size_t episodes = Episodes(2);
  std::size_t periodic_starts = 0;
  for (std::size_t producers : kProducerCounts) {
    for (std::size_t ep = 0; ep < episodes; ++ep) {
      concurrent::ShardedWheel wheel(
          2, 64, Submit(8192, 8192, concurrent::SubmitPolicy::kReject));
      TortureOptions options = PeriodicOptions(26000 + ep, producers);
      options.mode = TortureMode::kLockstepOracle;
      options.restart_probability = 0.2;
      options.ops_per_producer = 48;
      options.rounds = 12;
      const TortureReport report = RunTorture(wheel, options);
      ASSERT_TRUE(report.ok) << "producers=" << producers << " episode=" << ep
                             << ": " << report.violation;
      periodic_starts += report.periodic_starts;
    }
  }
  EXPECT_GT(periodic_starts, 0u) << "lockstep never replayed a periodic";
}

TEST(PeriodicTortureTest, LockstepOracleLockedShardedReplaysPeriodics) {
  const std::size_t episodes = Episodes(4);
  for (std::size_t producers : kProducerCounts) {
    for (std::size_t ep = 0; ep < episodes; ++ep) {
      concurrent::ShardedWheel wheel(2, 64);
      TortureOptions options = PeriodicOptions(27000 + ep, producers);
      options.mode = TortureMode::kLockstepOracle;
      options.restart_probability = 0.2;
      options.ops_per_producer = 48;
      options.rounds = 12;
      const TortureReport report = RunTorture(wheel, options);
      ASSERT_TRUE(report.ok) << "producers=" << producers << " episode=" << ep
                             << ": " << report.violation;
    }
  }
}

}  // namespace
}  // namespace twheel::verify
