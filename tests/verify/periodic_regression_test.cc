// Regression pins for the periodic re-arm bug family.
//
// Bug 1 (sim::Simulator): the periodic re-arm used to run INSIDE the expiry
// handler as a fresh StartTimer and ABORTED the process via
// TWHEEL_ASSERT_MSG(rearm.has_value(), ...) whenever the service rejected the
// re-arm — which a full arena does deterministically. The fix moves the re-arm
// onto the service's expiry path (StartPeriodic's in-place relink), which
// allocates nothing, so a full arena cannot reject it at all.
//
// Bug 2 (TimerService::RestartTimer default): the old default implemented
// stop+start through the public interface, which cannot recover the client's
// cookie — it silently restarted the timer with RequestId{0}, so the eventual
// expiry delivered the wrong cookie. The default now refuses with
// kNotSupported; TimerServiceBase's arena-aware fallback recovers the cookie
// (and a periodic's cadence) before the stop.
//
// Plus counter pins for the tentpole contract: a periodic's expiry-path re-arm
// is an allocation-free relink — one start_call total, every non-final lap a
// periodic_rearm_relink, the handle and generation valid across laps.

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "src/core/hashed_wheel_unsorted.h"
#include "src/core/timer_service.h"
#include "src/sim/simulator.h"
#include "tests/verify/all_services.h"

namespace twheel {
namespace {

using verify_tests::AllServiceCases;
using verify_tests::ServiceCase;

// ---------------------------------------------------------------------------
// Bug 1: Simulator periodic survives a full arena.
// ---------------------------------------------------------------------------

TEST(PeriodicRegressionTest, SimulatorPeriodicSurvivesFullArena) {
  // Arena bounded at 4 records: one for the periodic, three one-shots to fill
  // the rest. Under the old handler shape the first periodic fire tried to
  // StartTimer a replacement, got kNoCapacity, and aborted the process. The
  // relink re-arm touches no arena slot, so the series must keep firing with
  // the arena pinned full the whole time.
  constexpr std::size_t kCapacity = 4;
  sim::Simulator simulator(
      std::make_unique<HashedWheelUnsorted>(16, kCapacity));

  int periodic_runs = 0;
  const sim::EventToken periodic =
      simulator.Every(3, [&periodic_runs] { ++periodic_runs; });
  ASSERT_TRUE(periodic.valid());

  int one_shot_runs = 0;
  for (std::size_t i = 1; i < kCapacity; ++i) {
    ASSERT_TRUE(
        simulator.After(1000, [&one_shot_runs] { ++one_shot_runs; }).valid());
  }
  // The arena is now pinned full: one more start must be refused...
  EXPECT_FALSE(simulator.After(1000, [] {}).valid());

  // ...and the periodic must still lap on schedule, with the arena full at
  // every single fire.
  for (int i = 0; i < 9; ++i) {
    simulator.Step();
  }
  EXPECT_EQ(periodic_runs, 3);
  EXPECT_EQ(one_shot_runs, 0);
  EXPECT_EQ(simulator.service().counts().periodic_drops, 0u);

  // The token survived every lap; cancelling it ends the series.
  EXPECT_TRUE(simulator.Cancel(periodic));
  for (int i = 0; i < 6; ++i) {
    simulator.Step();
  }
  EXPECT_EQ(periodic_runs, 3);
}

// ---------------------------------------------------------------------------
// Bug 2: the interface default refuses rather than restarting with cookie 0.
// ---------------------------------------------------------------------------

// A deliberately minimal DIRECT TimerService implementation (no
// TimerServiceBase, no arena) that leaves RestartTimer at the interface
// default — the shape of an out-of-tree adapter over some foreign timer API.
class MinimalService final : public TimerService {
 public:
  StartResult StartTimer(Duration interval, RequestId request_id) override {
    if (interval == 0) {
      return TimerError::kZeroInterval;
    }
    timers_.emplace_back(request_id, now_ + interval);
    return TimerHandle{static_cast<std::uint32_t>(timers_.size() - 1), 1};
  }
  TimerError StopTimer(TimerHandle handle) override {
    if (!handle.valid() || handle.slot >= timers_.size() ||
        timers_[handle.slot].second == 0) {
      return TimerError::kNoSuchTimer;
    }
    timers_[handle.slot].second = 0;
    return TimerError::kOk;
  }
  std::size_t PerTickBookkeeping() override {
    ++now_;
    std::size_t fired = 0;
    for (auto& [id, due] : timers_) {
      if (due == now_) {
        due = 0;
        ++fired;
        if (handler_) {
          handler_(id, now_);
        }
      }
    }
    return fired;
  }
  Tick now() const override { return now_; }
  std::size_t outstanding() const override {
    std::size_t n = 0;
    for (const auto& [id, due] : timers_) {
      n += due != 0 ? 1 : 0;
    }
    return n;
  }
  metrics::OpCounts counts() const override { return {}; }
  std::string_view name() const override { return "minimal"; }
  void set_expiry_handler(ExpiryHandler handler) override {
    handler_ = std::move(handler);
  }
  SpaceProfile Space() const override { return {}; }

 private:
  Tick now_ = 0;
  std::vector<std::pair<RequestId, Tick>> timers_;
  ExpiryHandler handler_;
};

TEST(PeriodicRegressionTest, DefaultRestartRefusesInsteadOfLosingTheCookie) {
  MinimalService service;
  std::vector<RequestId> fired;
  service.set_expiry_handler(
      [&fired](RequestId id, Tick) { fired.push_back(id); });

  StartResult started = service.StartTimer(10, /*request_id=*/77);
  ASSERT_TRUE(started.has_value());

  // The old default would have returned kOk here after silently swapping the
  // cookie for RequestId{0}. A service without arena access cannot restart
  // faithfully, so the interface default must refuse...
  EXPECT_EQ(service.RestartTimer(started.value(), 5), TimerError::kNotSupported);
  // ...while still rejecting the always-invalid zero interval as such.
  EXPECT_EQ(service.RestartTimer(started.value(), 0), TimerError::kZeroInterval);

  // The refused restart left the timer untouched: it fires at the ORIGINAL
  // deadline with the ORIGINAL cookie.
  for (int i = 0; i < 10; ++i) {
    service.PerTickBookkeeping();
  }
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 77u);
}

// A minimal TimerServiceBase derivative that does NOT override RestartTimer,
// so restarts go through the arena-aware stop+start fallback (the path
// sim::TegasWheel and hw::ChipAssistedWheel inherit).
class FallbackService final : public TimerServiceBase {
 public:
  StartResult StartTimer(Duration interval, RequestId request_id) override {
    ++counts_.start_calls;
    if (interval == 0) {
      return TimerError::kZeroInterval;
    }
    TimerRecord* rec = AllocateRecord(interval, request_id);
    if (rec == nullptr) {
      return TimerError::kNoCapacity;
    }
    live_.push_back(rec);
    return rec->self;
  }
  TimerError StopTimer(TimerHandle handle) override {
    ++counts_.stop_calls;
    TimerRecord* rec = Resolve(handle);
    if (rec == nullptr) {
      return TimerError::kNoSuchTimer;
    }
    std::erase(live_, rec);
    ReleaseRecord(rec);
    return TimerError::kOk;
  }
  std::size_t PerTickBookkeeping() override {
    ++counts_.ticks;
    ++now_;
    std::size_t fired = 0;
    // No in-place RestartTimer override, so no TryFirePeriodic fast path: due
    // records go through Expire(), whose stop+start safety net re-arms
    // periodics (re-armed records re-enter live_ with a strictly future
    // deadline, so the swap-remove scan never revisits them this tick).
    for (std::size_t i = 0; i < live_.size();) {
      TimerRecord* rec = live_[i];
      if (rec->expiry_tick != now_) {
        ++i;
        continue;
      }
      live_[i] = live_.back();
      live_.pop_back();
      Expire(rec);
      ++fired;
    }
    return fired;
  }
  std::string_view name() const override { return "fallback"; }
  SpaceProfile Space() const override { return {}; }

 private:
  std::vector<TimerRecord*> live_;
};

TEST(PeriodicRegressionTest, BaseFallbackRestartPreservesCookieAndCadence) {
  FallbackService service;
  std::vector<std::pair<RequestId, Tick>> fired;
  service.set_expiry_handler(
      [&fired](RequestId id, Tick when) { fired.emplace_back(id, when); });

  // One-shot: the fallback burns the handle (stop+start recycles the slot) but
  // must keep the cookie — the pre-fix default delivered RequestId{0} here.
  StartResult one_shot = service.StartTimer(20, /*request_id=*/91);
  ASSERT_TRUE(one_shot.has_value());
  ASSERT_EQ(service.RestartTimer(one_shot.value(), 4), TimerError::kOk);
  for (int i = 0; i < 4; ++i) {
    service.PerTickBookkeeping();
  }
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], (std::pair<RequestId, Tick>{91, 4}));

  // Periodic: the fallback must carry the cadence and remaining budget across
  // the restart — the restarted timer fires at now + 3, then keeps lapping
  // every 5 ticks until its budget of 3 is spent.
  fired.clear();
  StartResult periodic = service.StartPeriodic(5, /*request_id=*/92,
                                               /*repeat_for=*/3);
  ASSERT_TRUE(periodic.has_value());
  ASSERT_EQ(service.RestartTimer(periodic.value(), 3), TimerError::kOk);
  const Tick base = service.now();
  for (int i = 0; i < 20; ++i) {
    service.PerTickBookkeeping();
  }
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0], (std::pair<RequestId, Tick>{92, base + 3}));
  EXPECT_EQ(fired[1], (std::pair<RequestId, Tick>{92, base + 8}));
  EXPECT_EQ(fired[2], (std::pair<RequestId, Tick>{92, base + 13}));
  EXPECT_EQ(service.outstanding(), 0u);
}

// ---------------------------------------------------------------------------
// Tentpole pins: allocation-free relink re-arm on every implementation.
// ---------------------------------------------------------------------------

class PeriodicCounterPinTest : public ::testing::TestWithParam<ServiceCase> {};

TEST_P(PeriodicCounterPinTest, RearmIsARelinkNotAReallocation) {
  auto service = GetParam().make();
  std::vector<Tick> fired;
  service->set_expiry_handler(
      [&fired](RequestId, Tick when) { fired.push_back(when); });

  StartResult started = service->StartPeriodic(7, /*request_id=*/5,
                                               /*repeat_for=*/3);
  ASSERT_TRUE(started.has_value());
  const TimerHandle handle = started.value();

  for (int i = 0; i < 14; ++i) {
    service->PerTickBookkeeping();
  }
  // Two laps down, one to go: the ORIGINAL handle (same slot, same
  // generation) still cancels/restarts the registration — the record was
  // relinked, never released.
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(service->outstanding(), 1u);
  EXPECT_EQ(service->RestartTimer(handle, 7), TimerError::kOk);

  for (int i = 0; i < 7; ++i) {
    service->PerTickBookkeeping();
  }
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(service->outstanding(), 0u);
  // After the FINAL lap the registration is gone and the handle is stale.
  EXPECT_EQ(service->StopTimer(handle), TimerError::kNoSuchTimer);

  const metrics::OpCounts counts = service->counts();
  // One client start total: the laps were relinks, not fresh registrations.
  EXPECT_EQ(counts.start_calls, 1u) << GetParam().label;
  EXPECT_EQ(counts.periodic_starts, 1u) << GetParam().label;
  EXPECT_EQ(counts.periodic_fires, 2u) << GetParam().label;
  EXPECT_EQ(counts.periodic_rearm_relinks, 2u) << GetParam().label;
  EXPECT_EQ(counts.expiries, 1u) << GetParam().label;
  EXPECT_EQ(counts.periodic_drops, 0u) << GetParam().label;
}

TEST_P(PeriodicCounterPinTest, CancelBetweenFiresUsesTheOriginalHandle) {
  auto service = GetParam().make();
  std::size_t fires = 0;
  service->set_expiry_handler([&fires](RequestId, Tick) { ++fires; });

  StartResult started = service->StartPeriodic(4, /*request_id=*/9,
                                               /*repeat_for=*/TimerService::kRepeatForever);
  ASSERT_TRUE(started.has_value());
  for (int i = 0; i < 10; ++i) {
    service->PerTickBookkeeping();
  }
  EXPECT_EQ(fires, 2u);
  // kRepeatForever never exhausts; only this cancel ends the series.
  EXPECT_EQ(service->StopTimer(started.value()), TimerError::kOk);
  EXPECT_EQ(service->outstanding(), 0u);
  for (int i = 0; i < 10; ++i) {
    service->PerTickBookkeeping();
  }
  EXPECT_EQ(fires, 2u);
}

INSTANTIATE_TEST_SUITE_P(AllImplementations, PeriodicCounterPinTest,
                         ::testing::ValuesIn(AllServiceCases()),
                         [](const ::testing::TestParamInfo<ServiceCase>& param) {
                           return param.param.label;
                         });

}  // namespace
}  // namespace twheel
