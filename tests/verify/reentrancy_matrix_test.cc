// Expiry-handler re-entrancy matrix, exact-semantics edition. The model-check
// suite exercises these moves probabilistically; this file pins the *precise*
// timing contract of each move, per implementation:
//
//   re-arm self               — a handler re-arming with interval d fires again
//                               exactly d ticks later, every time. The crucial
//                               case is d ≡ 0 (mod TableSize): the re-arm hashes
//                               into the bucket currently being swept and must
//                               wait a full revolution, not fire immediately.
//   stop unvisited sibling    — a handler may cancel any timer due on a later
//                               tick; it stays cancelled.
//   start a timer due next tick — interval 1 from inside a handler fires on the
//                               immediately following tick.
//
// LockedService is excluded from the re-entrant rows (its handlers run under the
// global lock, documented in locked_service.h); it still appears in the driver
// sweep at the bottom via DriverOptions::WithoutReentrancy().

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "src/verify/differential_driver.h"
#include "tests/verify/all_services.h"

namespace twheel::verify {
namespace {

using verify_tests::AllServiceCases;
using verify_tests::ServiceCase;

class ReentrancyMatrixTest : public ::testing::TestWithParam<ServiceCase> {};

// Handler re-arms itself with the same interval, 64 = the hashed wheels' table
// size, so every re-arm lands back in the bucket being swept mid-dispatch.
TEST_P(ReentrancyMatrixTest, RearmSelfAtTableSizeMultipleFiresExactly) {
  const ServiceCase& c = GetParam();
  if (!c.handlers_may_reenter) {
    GTEST_SKIP() << c.label << " runs handlers under its lock (by design)";
  }
  auto service = c.make();
  constexpr Duration kInterval = 64;  // ≡ 0 mod 64, ≡ 0 mod 32 and mod 16 too
  std::vector<Tick> fires;
  service->set_expiry_handler([&](RequestId id, Tick when) {
    fires.push_back(when);
    if (fires.size() < 4) {
      ASSERT_TRUE(service->StartTimer(kInterval, id).has_value());
    }
  });
  ASSERT_TRUE(service->StartTimer(kInterval, 7).has_value());
  service->AdvanceBy(4 * kInterval + 8);
  ASSERT_EQ(fires.size(), 4u) << c.label;
  EXPECT_EQ(fires, (std::vector<Tick>{64, 128, 192, 256})) << c.label;
  EXPECT_EQ(service->outstanding(), 0u) << c.label;
}

// A handler stops a sibling that is due on a later tick; the sibling never fires
// and its handle is stale afterwards.
TEST_P(ReentrancyMatrixTest, HandlerStopsNotYetVisitedSibling) {
  const ServiceCase& c = GetParam();
  if (!c.handlers_may_reenter) {
    GTEST_SKIP() << c.label << " runs handlers under its lock (by design)";
  }
  auto service = c.make();
  auto killer = service->StartTimer(5, 1);
  auto victim = service->StartTimer(7, 2);
  ASSERT_TRUE(killer.has_value() && victim.has_value());
  std::vector<RequestId> fired;
  service->set_expiry_handler([&](RequestId id, Tick) {
    fired.push_back(id);
    if (id == 1) {
      EXPECT_EQ(service->StopTimer(victim.value()), TimerError::kOk) << c.label;
    }
  });
  service->AdvanceBy(12);
  EXPECT_EQ(fired, (std::vector<RequestId>{1})) << c.label;
  EXPECT_EQ(service->outstanding(), 0u) << c.label;
  EXPECT_EQ(service->StopTimer(victim.value()), TimerError::kNoSuchTimer)
      << c.label << ": stopped sibling's handle must be stale";
}

// A handler starts a timer with interval 1: it fires on the very next tick.
TEST_P(ReentrancyMatrixTest, HandlerStartsTimerDueNextTick) {
  const ServiceCase& c = GetParam();
  if (!c.handlers_may_reenter) {
    GTEST_SKIP() << c.label << " runs handlers under its lock (by design)";
  }
  auto service = c.make();
  std::vector<std::pair<RequestId, Tick>> fired;
  service->set_expiry_handler([&](RequestId id, Tick when) {
    fired.push_back({id, when});
    if (id == 1) {
      ASSERT_TRUE(service->StartTimer(1, 2).has_value());
    }
  });
  ASSERT_TRUE(service->StartTimer(5, 1).has_value());
  service->AdvanceBy(8);
  ASSERT_EQ(fired.size(), 2u) << c.label;
  EXPECT_EQ(fired[0], (std::pair<RequestId, Tick>{1, 5})) << c.label;
  EXPECT_EQ(fired[1], (std::pair<RequestId, Tick>{2, 6})) << c.label;
}

// The same matrix, differentially: the driver's re-arm interval is pinned to the
// table size so every re-arm is the visited-bucket case, and sibling stops and
// next-tick starts run at high probability — all cross-checked against the
// oracle every tick. Lock-holding wrappers run the same episodes with the
// re-entrant moves stripped.
TEST_P(ReentrancyMatrixTest, DifferentialSweepWithTableSizeRearms) {
  const ServiceCase& c = GetParam();
  for (std::uint64_t seed = 3000; seed < 3010; ++seed) {
    DriverOptions options;
    options.seed = seed;
    options.ticks = 128;
    options.max_interval = 200;
    options.rearm_probability = 0.5;
    options.rearm_interval = 64;  // lands in the visited bucket on 64-slot wheels
    options.stop_sibling_probability = 0.4;
    options.start_next_tick_probability = 0.3;
    options.self_poke_probability = 0.5;
    if (!c.handlers_may_reenter) {
      options = options.WithoutReentrancy();
    }
    auto service = c.make();
    const DriverReport report = RunDifferential(*service, options);
    ASSERT_TRUE(report.ok) << c.label << " seed " << seed << ": "
                           << report.divergence;
  }
}

INSTANTIATE_TEST_SUITE_P(AllImplementations, ReentrancyMatrixTest,
                         ::testing::ValuesIn(AllServiceCases()),
                         [](const ::testing::TestParamInfo<ServiceCase>& param) {
                           return param.param.label;
                         });

}  // namespace
}  // namespace twheel::verify
