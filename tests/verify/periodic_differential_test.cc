// Periodic-aware differential model checking: every TimerService implementation
// against the sorted-multimap oracle, with StartPeriodic woven into the seeded
// decide-then-replay stream. The driver (src/verify/differential_driver.h)
// checks after every tick that periodic semantics agree on BOTH sides:
//
//   * the k-th fire of a periodic lands at exactly start + k*period (phase
//     stability), through the SAME handle pair — the expiry-path re-arm is an
//     in-place relink, never a release-and-reallocate;
//   * only the FINAL fire of a finite budget counts as an expiry; non-final
//     fires leave the registration outstanding, and the conservation law
//     starts == expiries + cancels + outstanding holds after every tick;
//   * StopTimer between fires (cancel-between-fires) and RestartTimer of a
//     live periodic (moves only the next deadline — cadence and remaining
//     budget must survive the relink) return kOk on both sides;
//   * from inside a non-final fire's own handler the handle is LIVE (re-arm
//     precedes dispatch), so a self-cancel must SUCCEED and end the series —
//     the exact opposite of the one-shot self-poke contract;
//   * after the final fire the handle is stale on both sides and joins the
//     stale-poke/stale-restart ammunition pool;
//   * counts() agree on periodic_starts and periodic_fires as well as the
//     routine counters.

#include <gtest/gtest.h>

#include "src/verify/differential_driver.h"
#include "tests/verify/all_services.h"

namespace twheel::verify {
namespace {

using verify_tests::AllServiceCases;
using verify_tests::ServiceCase;

class PeriodicDifferentialTest : public ::testing::TestWithParam<ServiceCase> {};

// The acceptance matrix: independently seeded episodes with periodic starts
// mixed into the full one-shot churn — stops hit periodics between fires,
// restarts move their next deadline, stale pokes chase their exhausted
// handles. Conservation is asserted by the driver after every tick.
TEST_P(PeriodicDifferentialTest, PeriodicEpisodesMatchOracle) {
  const ServiceCase& c = GetParam();
  std::size_t fires = 0;
  for (std::uint64_t seed = 11000; seed < 11060; ++seed) {
    DriverOptions options;
    options.seed = seed;
    options.ticks = 96;
    options.max_interval = 60;  // short periods: several laps per episode
    options.periodic_probability = 0.6;
    options.periodic_repeat_max = 5;
    options.stop_probability = 0.3;
    options.restart_probability = 0.25;
    options.restart_stale_probability = 0.3;
    options.stale_poke_probability = 0.4;
    auto service = c.make();
    const DriverReport report = RunDifferential(*service, options);
    ASSERT_TRUE(report.ok) << c.label << " seed " << seed << ": "
                           << report.divergence;
    fires += report.periodic_fires;
  }
  // The multi-lap leg must actually have been exercised across the suite.
  EXPECT_GT(fires, 0u) << c.label;
}

// Periods pinned to structure-sensitive intervals: the hashed table size (64 —
// every re-arm relinks into the bucket the cursor is dispatching RIGHT NOW,
// where only the rounds/revolution arithmetic keeps the next lap from firing
// immediately) and a hierarchy rollover pivot (256 — the level-2 unit, so each
// re-arm migrates down through the levels before firing).
TEST_P(PeriodicDifferentialTest, PeriodAtWheelBoundariesMatchesOracle) {
  const ServiceCase& c = GetParam();
  for (Duration pivot : {Duration{64}, Duration{256}}) {
    for (std::uint64_t seed = 12000; seed < 12020; ++seed) {
      DriverOptions options;
      options.seed = seed + pivot;
      options.ticks = 64;
      options.max_interval = 300;
      options.periodic_probability = 0.7;
      options.periodic_interval = pivot;
      options.periodic_repeat_max = 3;
      options.stop_probability = 0.2;
      auto service = c.make();
      const DriverReport report = RunDifferential(*service, options);
      ASSERT_TRUE(report.ok) << c.label << " pivot " << pivot << " seed "
                             << seed << ": " << report.divergence;
      ASSERT_GT(report.periodic_starts, 0u) << c.label << " pivot " << pivot;
    }
  }
}

// Periodic laps interleaved with AdvanceTo jumps across wheel-size and
// hierarchy rollover boundaries: a jumped window may contain SEVERAL fires of
// the same periodic, each of which the batched occupancy-bitmap advance must
// dispatch at its exact phase tick, in nondecreasing tick order, matching the
// oracle's loop default lap for lap.
TEST_P(PeriodicDifferentialTest, PeriodicAcrossRolloverJumpsMatchesOracle) {
  const ServiceCase& c = GetParam();
  std::size_t total_jumps = 0;
  std::size_t total_fires = 0;
  for (std::uint64_t seed = 13000; seed < 13030; ++seed) {
    DriverOptions options;
    options.seed = seed;
    options.ticks = 64;
    options.max_interval = 120;
    options.periodic_probability = 0.6;
    options.periodic_repeat_max = 6;
    options.jump_probability = 0.3;
    options.max_jump = 300;
    options.jump_pivots = {63, 64, 65, 255, 256, 257, 511, 512, 513};
    auto service = c.make();
    const DriverReport report = RunDifferential(*service, options);
    ASSERT_TRUE(report.ok) << c.label << " seed " << seed << ": "
                           << report.divergence;
    total_jumps += report.jumps;
    total_fires += report.periodic_fires;
  }
  EXPECT_GT(total_jumps, 0u) << c.label;
  EXPECT_GT(total_fires, 0u) << c.label;
}

// Cancel-from-own-handler: with the re-entrancy alphabet enabled, a non-final
// fire's handler self-cancels with the very handle that just fired — legal
// precisely because the expiry-path re-arm happens BEFORE dispatch — while
// one-shot self-pokes in the same stream must still be refused. The two
// contracts coexist in a single episode.
TEST_P(PeriodicDifferentialTest, SelfCancelFromOwnHandlerEndsTheSeries) {
  const ServiceCase& c = GetParam();
  if (!c.handlers_may_reenter) {
    GTEST_SKIP() << c.label << " runs handlers under its lock (by design)";
  }
  std::size_t self_cancels = 0;
  for (std::uint64_t seed = 14000; seed < 14040; ++seed) {
    DriverOptions options;
    options.seed = seed;
    options.ticks = 96;
    options.max_interval = 40;
    options.periodic_probability = 0.7;
    options.periodic_repeat_max = 6;
    options.self_poke_probability = 0.5;
    options.rearm_probability = 0.15;
    options.stop_sibling_probability = 0.15;
    options.restart_sibling_probability = 0.15;
    auto service = c.make();
    const DriverReport report = RunDifferential(*service, options);
    ASSERT_TRUE(report.ok) << c.label << " seed " << seed << ": "
                           << report.divergence;
    self_cancels += report.periodic_self_cancels;
  }
  EXPECT_GT(self_cancels, 0u) << c.label;
}

// High-churn slot recycling with the periodic alphabet saturated: single-fire
// budgets (repeat_max 1 draws only finals) mixed with multi-lap periodics,
// aggressive cancellation, and every exhausted handle recycled as stale-poke
// and stale-restart ammunition against reused slots.
TEST_P(PeriodicDifferentialTest, ChurnEpisodesKeepPeriodicHandlesSafe) {
  const ServiceCase& c = GetParam();
  for (std::uint64_t seed = 15000; seed < 15020; ++seed) {
    DriverOptions options;
    options.seed = seed;
    options.ticks = 128;
    options.starts_per_tick = 3.0;
    options.max_interval = 16;  // short fuses: constant expiry + recycling
    options.periodic_probability = 0.8;
    options.periodic_repeat_max = 4;
    options.stop_probability = 0.5;
    options.restart_probability = 0.3;
    options.restart_stale_probability = 0.8;
    options.stale_poke_probability = 0.8;
    auto service = c.make();
    const DriverReport report = RunDifferential(*service, options);
    ASSERT_TRUE(report.ok) << c.label << " seed " << seed << ": "
                           << report.divergence;
    EXPECT_GT(report.periodic_fires, 0u) << c.label << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(AllImplementations, PeriodicDifferentialTest,
                         ::testing::ValuesIn(AllServiceCases()),
                         [](const ::testing::TestParamInfo<ServiceCase>& param) {
                           return param.param.label;
                         });

}  // namespace
}  // namespace twheel::verify
