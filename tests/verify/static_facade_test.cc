// Static-facade equivalence suite: StaticTimerFacility<Scheme> (the
// devirtualized path of src/core/static_facility.h) must be observationally
// identical to its virtual twin.
//
// Two layers of proof:
//
//   1. Differential: every StaticFacadeService<Scheme> instantiation runs the
//      seeded oracle episodes with the FULL alphabet — starts, stops, stale
//      pokes, restarts (live/stale/zero), periodic registrations, in-handler
//      re-entrancy, and AdvanceTo jumps. Any behavioral difference the facade's
//      forwarding introduced (a dropped default argument, a wrong qualified
//      call) diverges the episode.
//
//   2. Lockstep twin: the facade and a plain virtual instance of the SAME
//      scheme are driven with one scripted op stream; expiry traces (tick, id,
//      in dispatch order), returned handles/errors, now()/outstanding(), and
//      the full OpCounts must match EXACTLY — not just oracle-equivalent.
//      Identical code driven identically is deterministic, so byte-equality is
//      the correct bar and catches even divergences the oracle cannot see
//      (e.g. intra-tick dispatch order, op-count accounting).

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/baselines/avl_timers.h"
#include "src/baselines/bst_timers.h"
#include "src/baselines/heap_timers.h"
#include "src/baselines/leftist_heap_timers.h"
#include "src/baselines/sorted_list_timers.h"
#include "src/baselines/unordered_timers.h"
#include "src/core/basic_wheel.h"
#include "src/core/hashed_wheel_sorted.h"
#include "src/core/hashed_wheel_unsorted.h"
#include "src/core/hierarchical_wheel.h"
#include "src/core/hybrid_wheel.h"
#include "src/core/static_facility.h"
#include "src/lawn/lawn_timers.h"
#include "src/rng/rng.h"
#include "src/verify/differential_driver.h"

namespace twheel::verify {
namespace {

// One scheme in both dispatch guises, built identically.
struct FacadeCase {
  std::string label;
  std::function<std::unique_ptr<TimerService>()> make_static;   // facade-wrapped
  std::function<std::unique_ptr<TimerService>()> make_virtual;  // plain twin
};

inline void PrintTo(const FacadeCase& c, std::ostream* os) { *os << c.label; }

constexpr std::size_t kLevels[] = {16, 16, 16};

template <typename Scheme, typename... Args>
FacadeCase Case(std::string label, Args... args) {
  return FacadeCase{
      std::move(label),
      [args...] { return std::make_unique<StaticFacadeService<Scheme>>(args...); },
      [args...] { return std::make_unique<Scheme>(args...); },
  };
}

std::vector<FacadeCase> AllFacadeCases() {
  lawn::LawnOptions lawn;
  lawn.max_distinct_ttls = 32;  // force overflow-annex traffic too
  return {
      Case<UnorderedTimers>("static_scheme1"),
      Case<SortedListTimers>("static_scheme2_front", SearchDirection::kFromFront),
      Case<SortedListTimers>("static_scheme2_rear", SearchDirection::kFromRear),
      Case<HeapTimers>("static_scheme3_heap"),
      Case<BstTimers>("static_scheme3_bst"),
      Case<AvlTimers>("static_scheme3_avl"),
      Case<LeftistHeapTimers>("static_scheme3_leftist"),
      Case<BasicWheel>("static_scheme4_basic", std::size_t{512}),
      Case<HybridWheel>("static_scheme4_hybrid", std::size_t{64}),
      Case<HashedWheelSorted>("static_scheme5", std::size_t{64}),
      Case<HashedWheelUnsorted>("static_scheme6", std::size_t{64}),
      Case<HierarchicalWheel>("static_scheme7",
                              std::span<const std::size_t>(kLevels)),
      Case<lawn::LawnTimers>("static_scheme8", lawn),
  };
}

class StaticFacadeTest : public ::testing::TestWithParam<FacadeCase> {};

// Layer 1: the static path through the oracle, full alphabet. These options
// deliberately light up every branch the facade forwards: one-shot and
// periodic starts, live/stale/zero restarts, in-handler re-entrancy, and
// batched AdvanceTo jumps with wheel-boundary pivots.
TEST_P(StaticFacadeTest, FullAlphabetEpisodesMatchOracle) {
  const FacadeCase& c = GetParam();
  std::size_t restarts = 0;
  std::size_t periodic = 0;
  std::size_t jumps = 0;
  for (std::uint64_t seed = 9100; seed < 9130; ++seed) {
    DriverOptions options;
    options.seed = seed;
    options.ticks = 96;
    options.max_interval = 200;
    options.stop_probability = 0.25;
    options.restart_probability = 0.25;
    options.restart_stale_probability = 0.3;
    options.restart_zero_probability = 0.1;
    options.periodic_probability = 0.1;
    options.rearm_probability = 0.1;
    options.stop_sibling_probability = 0.1;
    options.start_next_tick_probability = 0.1;
    options.self_poke_probability = 0.1;
    options.jump_probability = 0.1;
    options.jump_pivots = {63, 64, 65, 256};
    auto service = c.make_static();
    const DriverReport report = RunDifferential(*service, options);
    ASSERT_TRUE(report.ok) << c.label << " seed " << seed << ": "
                           << report.divergence;
    restarts += report.restarts;
    periodic += report.periodic_fires;
    jumps += report.jumps;
  }
  EXPECT_GT(restarts, 0u) << c.label << ": restart leg never exercised";
  EXPECT_GT(periodic, 0u) << c.label << ": periodic leg never exercised";
  EXPECT_GT(jumps, 0u) << c.label << ": AdvanceTo leg never exercised";
}

// Layer 2: lockstep exact-match against the virtual twin.
struct Fired {
  Tick tick;
  RequestId id;
  bool operator==(const Fired&) const = default;
};

struct LockstepResult {
  std::vector<Fired> trace;  // dispatch order preserved
  std::vector<std::pair<bool, TimerHandle>> starts;
  std::vector<TimerError> errors;
  Tick final_now = 0;
  std::size_t final_outstanding = 0;
  metrics::OpCounts counts;
};

// Drives `service` with the op stream drawn from `seed`. Both twins get the
// same seed, so they see byte-identical call sequences.
LockstepResult RunScript(TimerService& service, std::uint64_t seed) {
  LockstepResult r;
  service.set_expiry_handler(
      [&](RequestId id, Tick tick) { r.trace.push_back({tick, id}); });
  rng::Xoshiro256 rng(seed);
  std::vector<TimerHandle> handles;
  auto random_handle = [&]() -> TimerHandle {
    if (handles.empty()) {
      return TimerHandle{};
    }
    return handles[rng.NextBounded(handles.size())];
  };
  for (int step = 0; step < 600; ++step) {
    const std::uint64_t roll = rng.NextBounded(100);
    if (roll < 35) {
      const Duration interval = 1 + static_cast<Duration>(rng.NextBounded(180));
      StartResult started = service.StartTimer(interval, step);
      r.starts.emplace_back(started.has_value(),
                            started.has_value() ? started.value() : TimerHandle{});
      if (started.has_value()) {
        handles.push_back(started.value());
      }
    } else if (roll < 45) {
      StartResult started =
          service.StartPeriodic(1 + static_cast<Duration>(rng.NextBounded(40)), step,
                                1 + rng.NextBounded(4));
      r.starts.emplace_back(started.has_value(),
                            started.has_value() ? started.value() : TimerHandle{});
      if (started.has_value()) {
        handles.push_back(started.value());
      }
    } else if (roll < 60) {
      r.errors.push_back(service.StopTimer(random_handle()));
    } else if (roll < 75) {
      r.errors.push_back(service.RestartTimer(
          random_handle(), static_cast<Duration>(rng.NextBounded(200))));
    } else if (roll < 90) {
      service.PerTickBookkeeping();
    } else {
      service.AdvanceTo(service.now() + 1 + rng.NextBounded(64));
    }
  }
  // Drain: max interval 200 plus periodic tails.
  service.AdvanceTo(service.now() + 512);
  r.final_now = service.now();
  r.final_outstanding = service.outstanding();
  r.counts = service.counts();
  return r;
}

TEST_P(StaticFacadeTest, LockstepTwinIsByteIdentical) {
  const FacadeCase& c = GetParam();
  for (std::uint64_t seed = 31; seed < 39; ++seed) {
    auto fac = c.make_static();
    auto twin = c.make_virtual();
    const LockstepResult a = RunScript(*fac, seed);
    const LockstepResult b = RunScript(*twin, seed);
    ASSERT_EQ(a.trace.size(), b.trace.size()) << c.label << " seed " << seed;
    for (std::size_t i = 0; i < a.trace.size(); ++i) {
      ASSERT_EQ(a.trace[i], b.trace[i])
          << c.label << " seed " << seed << " divergence at dispatch " << i
          << ": (" << a.trace[i].tick << "," << a.trace[i].id << ") vs ("
          << b.trace[i].tick << "," << b.trace[i].id << ")";
    }
    EXPECT_EQ(a.starts, b.starts) << c.label << " seed " << seed;
    EXPECT_EQ(a.errors, b.errors) << c.label << " seed " << seed;
    EXPECT_EQ(a.final_now, b.final_now) << c.label << " seed " << seed;
    EXPECT_EQ(a.final_outstanding, b.final_outstanding)
        << c.label << " seed " << seed;
    // OpCounts is all-uint64 POD: byte equality pins even the accounting.
    EXPECT_EQ(std::memcmp(&a.counts, &b.counts, sizeof(metrics::OpCounts)), 0)
        << c.label << " seed " << seed << ": op accounting diverged";
    EXPECT_EQ(a.final_outstanding, 0u)
        << c.label << " seed " << seed << ": script did not drain";
  }
}

// The facade's escape hatch reaches the same object the forwards act on.
TEST(StaticFacadeScheme, SchemeAccessorSeesForwardedState) {
  StaticTimerFacility<BasicWheel> facility(std::size_t{64});
  ASSERT_TRUE(facility.StartTimer(5, 1).has_value());
  EXPECT_EQ(facility.scheme().outstanding(), 1u);
  EXPECT_EQ(facility.scheme().cursor(), 0u);
  facility.PerTickBookkeeping();
  EXPECT_EQ(facility.scheme().cursor(), 1u);
  EXPECT_EQ(facility.name(), "scheme4-basic-wheel");
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, StaticFacadeTest,
                         ::testing::ValuesIn(AllFacadeCases()),
                         [](const auto& info) { return info.param.label; });

}  // namespace
}  // namespace twheel::verify
