// Regression tests for the ShardedWheel memory-safety family.
//
// Bug 1 (dangling expiry handler): PerTickBookkeeping used to install, on every
// shard, a lambda capturing the tick's stack-local `expired` vector — and left it
// installed after returning. Any expiry dispatched outside that exact call (a
// destructor drain, a future code path firing from StopTimer, an overlapping
// tick) would write through a dead stack frame. The fix installs one persistent
// collector per shard, pointing at per-shard storage with shard lifetime; these
// tests pin the scenarios in which the stale lambda used to linger, and are run
// under ASan (-DTWHEEL_SANITIZE=address) by scripts/verify.sh, where any revival
// of the dangling-capture pattern turns into a hard stack-use-after-scope report.
//
// Bug 2 (counts() reference escaping the lock): counts() used to return a
// reference to a shared merged_counts_ member that the next caller rewrites;
// two concurrent callers raced reader-vs-rewriter. Now it returns a snapshot by
// value. ConcurrentCountsReaders fails under TSan against the old signature.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/concurrent/sharded_wheel.h"

namespace twheel::concurrent {
namespace {

// Destroying a wheel that has ticked — i.e. whose shards have dispatched through
// their collectors — with timers still live must not touch any dead frame. With
// the old per-tick lambda, each shard's handler still referenced the last tick's
// stack frame here; the persistent collector makes destruction inert.
TEST(ShardedWheelRegressionTest, DestroyWithLiveTimersAfterTicking) {
  for (std::size_t shards : {1u, 4u, 8u}) {
    ShardedWheel wheel(shards, 64);
    std::atomic<int> fired{0};
    wheel.set_expiry_handler([&](RequestId, Tick) { fired.fetch_add(1); });
    for (RequestId id = 0; id < 200; ++id) {
      ASSERT_TRUE(wheel.StartTimer(1 + id % 97, id).has_value());
    }
    wheel.AdvanceBy(5);  // some expiries dispatched, many timers still live
    EXPECT_GT(wheel.outstanding(), 0u);
    // Scope ends with live timers: shard destructors drain their wheels while
    // the collectors are still installed.
  }
}

// Same family, sharper: destroy immediately after a tick on which timers
// actually expired, so each shard's collector was exercised on the very last
// tick before destruction.
TEST(ShardedWheelRegressionTest, DestroyRightAfterExpiryDispatch) {
  ShardedWheel wheel(4, 16);
  int fired = 0;
  wheel.set_expiry_handler([&](RequestId, Tick) { ++fired; });
  for (RequestId id = 0; id < 16; ++id) {
    ASSERT_TRUE(wheel.StartTimer(1, id).has_value());
    ASSERT_TRUE(wheel.StartTimer(300, 1000 + id).has_value());
  }
  EXPECT_EQ(wheel.PerTickBookkeeping(), 16u);
  EXPECT_EQ(fired, 16);
  EXPECT_EQ(wheel.outstanding(), 16u);
}

// Expiries staged by a tick must be delivered by that tick and never resurface:
// the persistent collector is drained under the shard lock each tick, so a tick
// with no due timers delivers nothing even though the collector object persists.
TEST(ShardedWheelRegressionTest, CollectorDoesNotReplayAcrossTicks) {
  ShardedWheel wheel(2, 16);
  std::vector<std::pair<RequestId, Tick>> fired;
  wheel.set_expiry_handler([&](RequestId id, Tick when) { fired.push_back({id, when}); });
  ASSERT_TRUE(wheel.StartTimer(1, 1).has_value());
  ASSERT_TRUE(wheel.StartTimer(3, 2).has_value());
  EXPECT_EQ(wheel.PerTickBookkeeping(), 1u);
  EXPECT_EQ(wheel.PerTickBookkeeping(), 0u);  // nothing due: nothing replayed
  EXPECT_EQ(wheel.PerTickBookkeeping(), 1u);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], (std::pair<RequestId, Tick>{1, 1}));
  EXPECT_EQ(fired[1], (std::pair<RequestId, Tick>{2, 3}));
}

// Bug 2: concurrent counts() callers. Each must get an independent, coherent
// snapshot; with the by-reference version both read the same shared object while
// the other call rewrites it (TSan flags the race, and torn reads show up here
// as counters that go backwards).
TEST(ShardedWheelRegressionTest, ConcurrentCountsReaders) {
  ShardedWheel wheel(4, 64);
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};

  std::thread mutator([&] {
    RequestId id = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      auto r = wheel.StartTimer(1 + id % 50, id);
      if (r.has_value() && id % 2 == 0) {
        wheel.StopTimer(r.value());
      }
      wheel.PerTickBookkeeping();
      ++id;
    }
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      std::uint64_t last_ticks = 0;
      std::uint64_t last_starts = 0;
      for (int i = 0; i < 4000; ++i) {
        const metrics::OpCounts snapshot = wheel.counts();
        // Monotone counters: a torn or raced read shows up as regression.
        if (snapshot.ticks < last_ticks || snapshot.start_calls < last_starts) {
          failed.store(true);
          break;
        }
        last_ticks = snapshot.ticks;
        last_starts = snapshot.start_calls;
      }
    });
  }
  for (auto& r : readers) {
    r.join();
  }
  stop.store(true);
  mutator.join();
  EXPECT_FALSE(failed.load()) << "counts() snapshot went backwards";
}

}  // namespace
}  // namespace twheel::concurrent
