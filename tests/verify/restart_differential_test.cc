// Restart-aware differential model checking: every TimerService implementation
// against the sorted-multimap oracle, with RestartTimer mixed into the seeded
// decide-then-replay stream. The driver (src/verify/differential_driver.h)
// checks after every tick that restarts agree call-for-call on BOTH sides:
//
//   * a kOk restart relinks in place — the handle pair stays valid, the timer
//     fires at exactly now + new_interval and never at the old deadline;
//   * restart-of-expired and restart-of-cancelled (the retired-handle pool
//     holds both) and fabricated/null handles get kNoSuchTimer on both sides;
//   * RestartTimer(live, 0) gets kZeroInterval on both sides and the timer
//     still fires at its untouched old deadline;
//   * in-handler restarts of later-due siblings land while the victim's bucket
//     may be mid-dispatch (restart_sibling_interval pins the relink to the
//     bucket currently being swept);
//   * the conservation law starts == expiries + cancels + outstanding holds
//     after every tick and jump (restarts are neither starts nor cancels) —
//     CheckConservation inside the driver diverges the episode otherwise;
//   * both sides report identical restart_calls in counts().

#include <gtest/gtest.h>

#include "src/verify/differential_driver.h"
#include "tests/verify/all_services.h"

namespace twheel::verify {
namespace {

using verify_tests::AllServiceCases;
using verify_tests::ServiceCase;

class RestartDifferentialTest : public ::testing::TestWithParam<ServiceCase> {};

// The acceptance matrix: 100 independently seeded episodes per implementation
// with the full restart alphabet — live relinks, restart-of-expired,
// restart-of-cancelled, fabricated handles, and zero-interval rejects — woven
// through the usual start/stop/stale-poke churn. Conservation is asserted by
// the driver after every tick.
TEST_P(RestartDifferentialTest, HundredRestartEpisodesMatchOracle) {
  const ServiceCase& c = GetParam();
  std::size_t stale = 0;
  std::size_t zero = 0;
  for (std::uint64_t seed = 5000; seed < 5100; ++seed) {
    DriverOptions options;
    options.seed = seed;
    options.ticks = 96;
    options.max_interval = 200;
    options.stop_probability = 0.25;
    options.restart_probability = 0.35;
    options.restart_stale_probability = 0.5;
    options.restart_zero_probability = 0.2;
    auto service = c.make();
    const DriverReport report = RunDifferential(*service, options);
    ASSERT_TRUE(report.ok) << c.label << " seed " << seed << ": "
                           << report.divergence;
    ASSERT_GT(report.restarts, 0u) << c.label << " seed " << seed << ": vacuous";
    stale += report.stale_restarts;
    zero += report.zero_restarts;
  }
  // The reject legs must actually have been exercised across the suite.
  EXPECT_GT(stale, 0u) << c.label;
  EXPECT_GT(zero, 0u) << c.label;
}

// Restarts pinned to structure-sensitive intervals: exactly one table size (64
// — the hashed wheels relink into the bucket the cursor sweeps next; for the
// hierarchy it is the level-1 granularity, forcing a level hop) and one
// rollover pivot (256 — the hierarchical level-2 unit; past the 64-slot hashed
// lap, so the relinked timer needs a full extra round).
TEST_P(RestartDifferentialTest, RestartAtWheelBoundariesMatchesOracle) {
  const ServiceCase& c = GetParam();
  for (Duration pivot : {Duration{64}, Duration{256}}) {
    for (std::uint64_t seed = 6000; seed < 6025; ++seed) {
      DriverOptions options;
      options.seed = seed + pivot;
      options.ticks = 96;
      options.max_interval = 300;
      options.restart_probability = 0.4;
      options.restart_interval = pivot;
      auto service = c.make();
      const DriverReport report = RunDifferential(*service, options);
      ASSERT_TRUE(report.ok) << c.label << " pivot " << pivot << " seed "
                             << seed << ": " << report.divergence;
      ASSERT_GT(report.restarts, 0u) << c.label << " pivot " << pivot;
    }
  }
}

// Restarts interleaved with AdvanceTo jumps across wheel-size and hierarchy
// rollover boundaries: a relinked timer must survive the batched
// occupancy-bitmap advance exactly like the oracle's tick loop — same (tick,
// id) multiset, no fire at the pre-restart deadline inside the jumped window.
TEST_P(RestartDifferentialTest, RestartAcrossRolloverJumpsMatchesOracle) {
  const ServiceCase& c = GetParam();
  std::size_t total_jumps = 0;
  for (std::uint64_t seed = 7000; seed < 7030; ++seed) {
    DriverOptions options;
    options.seed = seed;
    options.ticks = 64;
    options.max_interval = 300;
    options.restart_probability = 0.35;
    options.restart_stale_probability = 0.3;
    options.jump_probability = 0.25;
    options.max_jump = 300;
    options.jump_pivots = {63, 64, 65, 255, 256, 257, 511, 512, 513};
    auto service = c.make();
    const DriverReport report = RunDifferential(*service, options);
    ASSERT_TRUE(report.ok) << c.label << " seed " << seed << ": "
                           << report.divergence;
    ASSERT_GT(report.restarts, 0u) << c.label << " seed " << seed;
    total_jumps += report.jumps;
  }
  EXPECT_GT(total_jumps, 0u) << c.label;
}

// In-handler restarts of not-yet-visited siblings during dispatch, half the
// episodes with the relink pinned to the table size — the restarted sibling's
// new deadline hashes into the bucket the cursor is dispatching RIGHT NOW, and
// must still not fire until a full lap later.
TEST_P(RestartDifferentialTest, HandlerRestartsSiblingOnDispatchingTick) {
  const ServiceCase& c = GetParam();
  if (!c.handlers_may_reenter) {
    GTEST_SKIP() << c.label << " runs handlers under its lock (by design)";
  }
  std::size_t sibling_restarts = 0;
  for (std::uint64_t seed = 8000; seed < 8040; ++seed) {
    DriverOptions options;
    options.seed = seed;
    options.ticks = 96;
    options.max_interval = 200;
    options.restart_probability = 0.2;
    options.restart_sibling_probability = 0.5;
    options.restart_sibling_interval = (seed % 2 == 0) ? 64 : 0;
    options.rearm_probability = 0.2;
    options.stop_sibling_probability = 0.2;
    auto service = c.make();
    const DriverReport report = RunDifferential(*service, options);
    ASSERT_TRUE(report.ok) << c.label << " seed " << seed << ": "
                           << report.divergence;
    sibling_restarts += report.handler_sibling_restarts;
  }
  EXPECT_GT(sibling_restarts, 0u) << c.label;
}

// High-churn slot recycling with the restart alphabet saturated: short fuses
// and aggressive cancellation recycle arena slots rapidly, so every stale
// restart targets a recently reused slot — the generation counters must refuse
// them all while live restarts keep relinking in place.
TEST_P(RestartDifferentialTest, ChurnEpisodesKeepRestartHandlesSafe) {
  const ServiceCase& c = GetParam();
  for (std::uint64_t seed = 9000; seed < 9020; ++seed) {
    DriverOptions options;
    options.seed = seed;
    options.ticks = 128;
    options.starts_per_tick = 4.0;
    options.max_interval = 24;  // short fuses: constant expiry + recycling
    options.stop_probability = 0.6;
    options.restart_probability = 0.4;
    options.restart_stale_probability = 1.0;
    options.restart_zero_probability = 0.3;
    auto service = c.make();
    const DriverReport report = RunDifferential(*service, options);
    ASSERT_TRUE(report.ok) << c.label << " seed " << seed << ": "
                           << report.divergence;
    EXPECT_GT(report.stale_restarts, 0u) << c.label << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(AllImplementations, RestartDifferentialTest,
                         ::testing::ValuesIn(AllServiceCases()),
                         [](const ::testing::TestParamInfo<ServiceCase>& param) {
                           return param.param.label;
                         });

}  // namespace
}  // namespace twheel::verify
