// Histogram accuracy properties, parameterized over value distributions: every
// quantile must be within the bucketing scheme's relative-error bound of the exact
// sample quantile, at every magnitude.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "src/metrics/histogram.h"
#include "src/rng/rng.h"

namespace twheel::metrics {
namespace {

struct DistCase {
  std::string label;
  std::uint64_t (*draw)(rng::Xoshiro256&);
};

std::vector<DistCase> Distributions() {
  return {
      {"small_uniform", [](rng::Xoshiro256& g) { return g.NextBounded(100); }},
      {"mid_uniform", [](rng::Xoshiro256& g) { return g.NextBounded(1 << 22); }},
      {"huge_uniform",
       [](rng::Xoshiro256& g) { return g.NextBounded(std::uint64_t{1} << 50); }},
      {"exponentialish",
       [](rng::Xoshiro256& g) {
         double u = g.NextDouble();
         return static_cast<std::uint64_t>(-100000.0 * std::log(1.0 - u));
       }},
      {"bimodal",
       [](rng::Xoshiro256& g) {
         return g.NextBool(0.5) ? g.NextBounded(64) : (1u << 20) + g.NextBounded(1024);
       }},
      {"power_of_two_spikes",
       [](rng::Xoshiro256& g) { return std::uint64_t{1} << g.NextBounded(40); }},
  };
}

class HistogramPropertyTest : public ::testing::TestWithParam<DistCase> {};

TEST_P(HistogramPropertyTest, QuantilesTrackExactSample) {
  rng::Xoshiro256 gen(2024);
  Histogram hist;
  std::vector<std::uint64_t> exact;
  constexpr int kSamples = 50000;
  exact.reserve(kSamples);
  for (int i = 0; i < kSamples; ++i) {
    std::uint64_t v = GetParam().draw(gen);
    hist.Add(v);
    exact.push_back(v);
  }
  std::sort(exact.begin(), exact.end());

  ASSERT_EQ(hist.count(), static_cast<std::uint64_t>(kSamples));
  EXPECT_EQ(hist.max(), exact.back());

  for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    std::uint64_t truth = exact[static_cast<std::size_t>(q * (kSamples - 1))];
    std::uint64_t approx = hist.Quantile(q);
    // Relative error bound: one sub-bucket width = 1/32 of the octave, plus slack
    // for the discrete quantile-index convention.
    double bound = std::max(2.0, static_cast<double>(truth) * 0.08);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(truth), bound)
        << GetParam().label << " q=" << q;
  }
}

TEST_P(HistogramPropertyTest, MeanIsExactRegardlessOfBucketing) {
  rng::Xoshiro256 gen(55);
  Histogram hist;
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    std::uint64_t v = GetParam().draw(gen);
    hist.Add(v);
    sum += static_cast<double>(v);
  }
  // The histogram keeps an exact integer sum; the double accumulator here loses
  // low bits at 2^50-magnitude values, so compare with a relative tolerance.
  double expected = sum / 10000.0;
  EXPECT_NEAR(hist.mean(), expected, expected * 1e-9 + 1e-9) << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(Distributions, HistogramPropertyTest,
                         ::testing::ValuesIn(Distributions()),
                         [](const ::testing::TestParamInfo<DistCase>& param_info) {
                           return param_info.param.label;
                         });

}  // namespace
}  // namespace twheel::metrics
