// Unit tests for op counts, running stats, the log-linear histogram, and the
// Section 7 VAX cost model.

#include <gtest/gtest.h>

#include <cmath>

#include "src/metrics/histogram.h"
#include "src/metrics/op_counts.h"
#include "src/metrics/running_stats.h"
#include "src/metrics/vax_cost.h"
#include "src/rng/rng.h"

namespace twheel::metrics {
namespace {

TEST(OpCountsTest, AccumulateAndDiff) {
  OpCounts a;
  a.start_calls = 10;
  a.comparisons = 100;
  a.empty_slot_checks = 7;
  OpCounts b;
  b.start_calls = 3;
  b.comparisons = 40;
  b.migrations = 2;

  OpCounts sum = a;
  sum += b;
  EXPECT_EQ(sum.start_calls, 13u);
  EXPECT_EQ(sum.comparisons, 140u);
  EXPECT_EQ(sum.migrations, 2u);

  OpCounts diff = sum - b;
  EXPECT_EQ(diff.start_calls, a.start_calls);
  EXPECT_EQ(diff.comparisons, a.comparisons);
  EXPECT_EQ(diff.migrations, 0u);
}

TEST(OpCountsTest, TickWorkSumsBookkeepingFields) {
  OpCounts c;
  c.empty_slot_checks = 1;
  c.decrement_visits = 2;
  c.expiry_dispatches = 3;
  c.migrations = 4;
  c.comparisons = 100;  // not bookkeeping work
  EXPECT_EQ(c.TickWork(), 10u);
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, ResetClears) {
  RunningStats s;
  s.Add(5.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(HistogramTest, ExactRegionIsExact) {
  Histogram h;
  for (std::uint64_t v = 0; v < 32; ++v) {
    h.Add(v);
  }
  EXPECT_EQ(h.count(), 32u);
  EXPECT_EQ(h.Quantile(0.0), 0u);
  EXPECT_EQ(h.Quantile(1.0), 31u);
  EXPECT_EQ(h.max(), 31u);
}

TEST(HistogramTest, MeanIsExact) {
  Histogram h;
  h.Add(10);
  h.Add(20);
  h.Add(30);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(HistogramTest, QuantileRelativeErrorBounded) {
  Histogram h;
  rng::Xoshiro256 g(1);
  for (int i = 0; i < 100000; ++i) {
    h.Add(g.NextBounded(1 << 20));
  }
  // Median of uniform [0, 2^20) is ~2^19; bucket error is ~3%.
  double median = static_cast<double>(h.Quantile(0.5));
  EXPECT_NEAR(median, 524288.0, 524288.0 * 0.05);
}

TEST(HistogramTest, LargeValuesLandInBoundedBuckets) {
  Histogram h;
  for (std::uint64_t v : {1ULL << 32, (1ULL << 40) + 12345, (1ULL << 62)}) {
    h.Add(v);
    std::uint64_t q = h.Quantile(1.0);
    EXPECT_GE(q, v);
    EXPECT_LE(static_cast<double>(q - v), static_cast<double>(v) * 0.04);
    h.Reset();
  }
}

TEST(HistogramTest, QuantilesMonotone) {
  Histogram h;
  rng::Xoshiro256 g(2);
  for (int i = 0; i < 10000; ++i) {
    h.Add(g.NextBounded(100000));
  }
  std::uint64_t prev = 0;
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    std::uint64_t v = h.Quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(VaxCostTest, PaperConstantsReproduceSection7Formula) {
  // "The average cost per tick is 4 + 15 * n/TableSize": one skip per tick plus,
  // per expiring timer per table scan, decrement (6) + expire (9) = 15.
  VaxCostModel model;
  OpCounts c;
  c.ticks = 256;              // one full scan of a 256-slot table
  c.empty_slot_checks = 200;  // slots that were empty
  c.decrement_visits = 100;   // n = 100 timers each touched once per scan
  c.expiry_dispatches = 100;  // worst case: all of them expire during the scan
  double per_tick = model.PerTick(c);
  // 200 skips cost 4 each; occupied-slot visits are not separately charged a skip,
  // so measured per-tick is slightly below the closed form's uniform "+4".
  double predicted = VaxCostModel::PredictedPerTickScheme6(100, 256);
  EXPECT_NEAR(per_tick, predicted, 1.0);
}

TEST(VaxCostTest, TotalWeightsAllFields) {
  VaxCostModel model;
  OpCounts c;
  c.insert_link_ops = 2;
  c.delete_unlink_ops = 3;
  c.empty_slot_checks = 5;
  c.decrement_visits = 7;
  c.expiry_dispatches = 11;
  c.comparisons = 13;
  EXPECT_DOUBLE_EQ(model.Total(c), 2 * 13.0 + 3 * 7.0 + 5 * 4.0 + 7 * 6.0 + 11 * 9.0 + 13.0);
}

}  // namespace
}  // namespace twheel::metrics
