// Tests for the workload driver itself: determinism, scheme-independence of the
// request stream, measurement plumbing, and trace prediction.

#include <gtest/gtest.h>

#include "src/baselines/sorted_list_timers.h"
#include "src/core/hashed_wheel_unsorted.h"
#include "src/workload/workload.h"

namespace twheel::workload {
namespace {

WorkloadSpec SmallSpec() {
  WorkloadSpec spec;
  spec.seed = 7;
  spec.intervals = IntervalKind::kExponential;
  spec.interval_mean = 20.0;
  spec.interval_cap = 200;
  spec.arrival_rate = 1.0;
  spec.measured_starts = 500;
  return spec;
}

TEST(WorkloadTest, SameSeedSameTrace) {
  auto spec = SmallSpec();
  HashedWheelUnsorted a(64), b(64);
  auto ra = twheel::workload::Run(a, spec);
  auto rb = workload::Run(b, spec);
  EXPECT_EQ(ra.trace, rb.trace);
  EXPECT_EQ(ra.starts_issued, rb.starts_issued);
  EXPECT_EQ(ra.ticks_run, rb.ticks_run);
}

TEST(WorkloadTest, DifferentSeedDifferentTrace) {
  auto spec = SmallSpec();
  HashedWheelUnsorted a(64);
  auto ra = twheel::workload::Run(a, spec);
  spec.seed = 8;
  HashedWheelUnsorted b(64);
  auto rb = workload::Run(b, spec);
  EXPECT_NE(ra.trace, rb.trace);
}

TEST(WorkloadTest, PredictedTraceMatchesActual) {
  auto spec = SmallSpec();
  spec.stop_fraction = 0.4;
  HashedWheelUnsorted wheel(64);
  auto result = workload::Run(wheel, spec);
  EXPECT_EQ(NormalizedTrace(result.trace), PredictedTrace(spec));
}

TEST(WorkloadTest, StartsAndStopsAccounted) {
  auto spec = SmallSpec();
  spec.stop_fraction = 0.5;
  SortedListTimers timers;
  auto result = workload::Run(timers, spec);
  EXPECT_EQ(result.starts_issued, spec.measured_starts);
  EXPECT_EQ(result.starts_rejected, 0u);
  // Every start either stopped or expired (or is still outstanding past horizon —
  // impossible here because horizon covers every resolution).
  EXPECT_EQ(result.stops_issued + result.expiries, result.starts_issued);
  EXPECT_NEAR(static_cast<double>(result.stops_issued) /
                  static_cast<double>(result.starts_issued),
              0.5, 0.07);
}

TEST(WorkloadTest, WarmupExcludedFromMeasurement) {
  auto spec = SmallSpec();
  spec.warmup_starts = 200;
  SortedListTimers timers;
  auto result = workload::Run(timers, spec);
  EXPECT_EQ(result.starts_issued, 700u);
  EXPECT_EQ(result.start_comparisons.count(), 500u);  // only measured starts sampled
}

TEST(WorkloadTest, MaxTicksTruncatesConsistently) {
  auto spec = SmallSpec();
  spec.max_ticks = 100;
  HashedWheelUnsorted wheel(64);
  auto result = workload::Run(wheel, spec);
  EXPECT_LE(result.ticks_run, 100u);
  for (const auto& event : result.trace) {
    EXPECT_LE(event.tick, 100u);
  }
  EXPECT_EQ(NormalizedTrace(result.trace), PredictedTrace(spec));
}

TEST(WorkloadTest, OutstandingStatSampled) {
  auto spec = SmallSpec();
  HashedWheelUnsorted wheel(64);
  auto result = workload::Run(wheel, spec);
  EXPECT_GT(result.outstanding.count(), 0u);
  EXPECT_GT(result.outstanding.mean(), 0.0);
}

TEST(WorkloadTest, TickWorkHistogramPopulated) {
  auto spec = SmallSpec();
  HashedWheelUnsorted wheel(64);
  auto result = workload::Run(wheel, spec);
  EXPECT_EQ(result.tick_work_hist.count(), result.tick_work.count());
  EXPECT_GE(result.tick_work_hist.max(), 1u);
}

TEST(WorkloadTest, NormalizedTraceSortsByTickThenId) {
  std::vector<ExpiryEvent> trace = {{5, 2}, {3, 9}, {5, 1}, {3, 1}};
  auto sorted = NormalizedTrace(trace);
  EXPECT_EQ(sorted, (std::vector<ExpiryEvent>{{3, 1}, {3, 9}, {5, 1}, {5, 2}}));
}

TEST(WorkloadTest, IntervalCapHonored) {
  auto spec = SmallSpec();
  spec.intervals = IntervalKind::kPareto;
  spec.interval_lo = 1;
  spec.pareto_alpha = 1.1;  // wild tail
  spec.interval_cap = 50;
  spec.measured_starts = 2000;
  HashedWheelUnsorted wheel(64);
  auto result = workload::Run(wheel, spec);
  // No expiry can be more than cap ticks after the last start; the horizon is thus
  // bounded by roughly starts * mean_gap + cap.
  EXPECT_LE(result.ticks_run, 2000 * 2 + 50u);
}

// --- TCP-retransmission (restart-heavy) generator ---------------------------

RetransmitSpec SmallRetransmit() {
  RetransmitSpec spec;
  spec.seed = 11;
  spec.connections = 64;
  spec.rto = 16;
  spec.ack_probability = 0.25;
  spec.ticks = 512;
  return spec;
}

TEST(RetransmitWorkloadTest, RestartAndStopStartSeeIdenticalEvents) {
  // The two relink modes replay the SAME pre-drawn ACK stream: identical ACK
  // counts and identical retransmission (expiry) counts, differing only in
  // which relink operation carried each ACK.
  auto spec = SmallRetransmit();
  HashedWheelUnsorted a(64), b(64);
  spec.use_restart = true;
  auto inplace = RunRetransmit(a, spec);
  spec.use_restart = false;
  auto fallback = RunRetransmit(b, spec);
  EXPECT_EQ(inplace.acks, fallback.acks);
  EXPECT_EQ(inplace.retransmissions, fallback.retransmissions);
  EXPECT_EQ(inplace.restarts_issued, inplace.acks);
  EXPECT_EQ(inplace.stop_start_pairs, 0u);
  EXPECT_EQ(fallback.stop_start_pairs, fallback.acks);
  EXPECT_EQ(fallback.restarts_issued, 0u);
}

TEST(RetransmitWorkloadTest, SchemesAgreeOnTheAckStream) {
  auto spec = SmallRetransmit();
  HashedWheelUnsorted wheel(64);
  SortedListTimers list;
  auto rw = RunRetransmit(wheel, spec);
  auto rl = RunRetransmit(list, spec);
  EXPECT_EQ(rw.acks, rl.acks);
  EXPECT_EQ(rw.retransmissions, rl.retransmissions);
  EXPECT_EQ(rw.ticks_run, rl.ticks_run);
}

TEST(RetransmitWorkloadTest, RestartsDominateWhenAcksAreFrequent) {
  // The Section 2 claim this generator models: with ACKs frequent relative to
  // the RTO, relinks vastly outnumber expiries. (1 - 0.25)^16 ≈ 1% of windows
  // go quiet, so ACKs should outnumber retransmissions by ~two orders.
  auto spec = SmallRetransmit();
  HashedWheelUnsorted wheel(64);
  auto result = RunRetransmit(wheel, spec);
  EXPECT_GT(result.acks, 0u);
  EXPECT_GT(result.acks, 20 * result.retransmissions);
  EXPECT_EQ(result.ops.restart_calls, result.restarts_issued);
  // Conservation: restarts are neither starts nor cancels, so every start is
  // still live (the run re-arms every expiry).
  EXPECT_EQ(wheel.outstanding(), spec.connections);
}

TEST(RetransmitWorkloadTest, LossyAckStreamForcesRetransmissions) {
  auto spec = SmallRetransmit();
  spec.ack_probability = 0.02;  // (1 - 0.02)^16 ≈ 72% of windows go quiet
  HashedWheelUnsorted wheel(64);
  auto result = RunRetransmit(wheel, spec);
  EXPECT_GT(result.retransmissions, result.acks);
}

}  // namespace
}  // namespace twheel::workload
