// Unit and statistical tests for the PRNG and the Section 3.2 distributions.
//
// Statistical assertions use wide tolerances (several standard errors) so they are
// deterministic in practice for the fixed seeds used here.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include "src/metrics/running_stats.h"
#include "src/rng/distributions.h"
#include "src/rng/rng.h"

namespace twheel::rng {
namespace {

TEST(SplitMix64Test, DeterministicForSeed) {
  SplitMix64 a(42), b(42), c(43);
  std::uint64_t x = a.Next();
  EXPECT_EQ(x, b.Next());
  EXPECT_NE(x, c.Next());
}

TEST(Xoshiro256Test, DeterministicForSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Xoshiro256Test, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.Next() == b.Next();
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256Test, NextDoubleInHalfOpenUnit) {
  Xoshiro256 g(3);
  for (int i = 0; i < 10000; ++i) {
    double d = g.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro256Test, NextBoundedStaysInRange) {
  Xoshiro256 g(4);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, (1ULL << 40)}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(g.NextBounded(bound), bound);
    }
  }
  EXPECT_EQ(g.NextBounded(0), 0u);
  EXPECT_EQ(g.NextBounded(1), 0u);
}

TEST(Xoshiro256Test, NextBoundedCoversAllResidues) {
  Xoshiro256 g(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    seen.insert(g.NextBounded(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro256Test, NextBoundedRoughlyUniform) {
  Xoshiro256 g(6);
  constexpr int kBuckets = 16;
  constexpr int kDraws = 160000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[g.NextBounded(kBuckets)];
  }
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int c : counts) {
    EXPECT_NEAR(c, expected, 5.0 * std::sqrt(expected));
  }
}

TEST(Xoshiro256Test, NextBoolMatchesProbability) {
  Xoshiro256 g(7);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    hits += g.NextBool(0.3);
  }
  EXPECT_NEAR(hits / static_cast<double>(kDraws), 0.3, 0.01);
}

class DistributionMeanTest : public ::testing::Test {
 protected:
  static metrics::RunningStats Sample(IntervalDistribution& dist, int n, std::uint64_t seed) {
    Xoshiro256 g(seed);
    metrics::RunningStats stats;
    for (int i = 0; i < n; ++i) {
      stats.Add(static_cast<double>(dist.Draw(g)));
    }
    return stats;
  }
};

TEST_F(DistributionMeanTest, ConstantIsConstant) {
  ConstantInterval dist(17);
  auto stats = Sample(dist, 1000, 1);
  EXPECT_EQ(stats.min(), 17.0);
  EXPECT_EQ(stats.max(), 17.0);
  EXPECT_EQ(dist.Mean(), 17.0);
}

TEST_F(DistributionMeanTest, UniformMeanAndRange) {
  UniformInterval dist(10, 30);
  auto stats = Sample(dist, 100000, 2);
  EXPECT_NEAR(stats.mean(), 20.0, 0.2);
  EXPECT_GE(stats.min(), 10.0);
  EXPECT_LE(stats.max(), 30.0);
  EXPECT_EQ(stats.min(), 10.0);  // endpoints inclusive and reachable
  EXPECT_EQ(stats.max(), 30.0);
}

TEST_F(DistributionMeanTest, ExponentialMeanCloseToNominal) {
  ExponentialInterval dist(100.0);
  auto stats = Sample(dist, 100000, 3);
  // Ceil-rounding to ticks biases the mean up by ~0.5.
  EXPECT_NEAR(stats.mean(), 100.5, 2.0);
  EXPECT_GE(stats.min(), 1.0);
}

TEST_F(DistributionMeanTest, GeometricMeanCloseToNominal) {
  GeometricInterval dist(0.05);  // mean 20
  auto stats = Sample(dist, 100000, 4);
  EXPECT_NEAR(stats.mean(), 20.0, 0.5);
  EXPECT_GE(stats.min(), 1.0);
}

TEST_F(DistributionMeanTest, ParetoMeanCloseToNominal) {
  ParetoInterval dist(2.5, 10);
  auto stats = Sample(dist, 200000, 5);
  // alpha/(alpha-1) * x_m = 16.67, plus ceil bias.
  EXPECT_NEAR(stats.mean(), dist.Mean() + 0.5, 1.0);
  EXPECT_GE(stats.min(), 10.0);
}

TEST_F(DistributionMeanTest, AllDrawsArePositive) {
  Xoshiro256 g(6);
  std::vector<std::unique_ptr<IntervalDistribution>> dists;
  dists.push_back(std::make_unique<ConstantInterval>(1));
  dists.push_back(std::make_unique<UniformInterval>(1, 2));
  dists.push_back(std::make_unique<ExponentialInterval>(0.01));  // tiny mean: rounds up
  dists.push_back(std::make_unique<GeometricInterval>(0.999));
  dists.push_back(std::make_unique<ParetoInterval>(1.1, 1));
  for (auto& dist : dists) {
    for (int i = 0; i < 5000; ++i) {
      EXPECT_GE(dist->Draw(g), 1u) << dist->Name();
    }
  }
}

TEST(ArrivalProcessTest, PoissonGapMean) {
  PoissonArrivals arrivals(0.25);  // mean gap 4 ticks
  Xoshiro256 g(8);
  metrics::RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.Add(static_cast<double>(arrivals.NextGap(g)));
  }
  // The fractional carry preserves the continuous-time rate exactly.
  EXPECT_NEAR(stats.mean(), 4.0, 0.05);
}

TEST(ArrivalProcessTest, PeriodicIsExact) {
  PeriodicArrivals arrivals(5);
  Xoshiro256 g(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(arrivals.NextGap(g), 5u);
  }
  EXPECT_EQ(arrivals.MeanGap(), 5.0);
}

}  // namespace
}  // namespace twheel::rng
