// Lawn-specific regressions: the distinct-TTL cap's overflow fallback, the
// counts() conservation law, and the slop-bits precision bound — the three
// behaviors scheme 8 adds on top of the contract the shared matrices already
// pin for every scheme.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/core/hierarchical_wheel.h"
#include "src/core/slop.h"
#include "src/lawn/lawn_timers.h"
#include "src/rng/rng.h"

namespace twheel {
namespace {

using Fired = std::vector<std::pair<Tick, RequestId>>;

void Collect(TimerService& service, Fired& into) {
  service.set_expiry_handler(
      [&into](RequestId id, Tick when) { into.emplace_back(when, id); });
}

// Cap 4, eight distinct TTLs: the first four get buckets, the rest land in the
// shared overflow list — and every timer still fires at exactly start +
// interval, because the fallback trades comparisons, never correctness.
TEST(LawnCapTest, BeyondCapFallsBackToOverflowWithExactExpiry) {
  lawn::LawnOptions options;
  options.max_distinct_ttls = 4;
  lawn::LawnTimers lawn(options);
  Fired fired;
  Collect(lawn, fired);

  Fired expected;
  for (RequestId id = 1; id <= 8; ++id) {
    const Duration ttl = 10 * static_cast<Duration>(id);  // 10, 20, ..., 80
    ASSERT_TRUE(lawn.StartTimer(ttl, id).has_value());
    expected.emplace_back(ttl, id);
  }
  EXPECT_EQ(lawn.distinct_ttls(), 4u);
  EXPECT_EQ(lawn.OverflowPopulationSlow(), 4u);

  // A REPEATED beyond-cap TTL joins the overflow too (no bucket appears), and
  // a repeat of a bucketed TTL does not consume cap.
  ASSERT_TRUE(lawn.StartTimer(50, 9).has_value());
  expected.emplace_back(50, 9);
  ASSERT_TRUE(lawn.StartTimer(10, 10).has_value());
  expected.emplace_back(10, 10);
  EXPECT_EQ(lawn.distinct_ttls(), 4u);
  EXPECT_EQ(lawn.OverflowPopulationSlow(), 5u);

  while (lawn.outstanding() > 0) {
    lawn.PerTickBookkeeping();
  }
  std::sort(fired.begin(), fired.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(lawn.OverflowPopulationSlow(), 0u);
}

TEST(LawnCapTest, ZeroCapMeansUnbounded) {
  lawn::LawnTimers lawn;  // max_distinct_ttls = 0
  for (RequestId id = 1; id <= 64; ++id) {
    ASSERT_TRUE(lawn.StartTimer(static_cast<Duration>(id), id).has_value());
  }
  EXPECT_EQ(lawn.distinct_ttls(), 64u);
  EXPECT_EQ(lawn.OverflowPopulationSlow(), 0u);
}

// Overflow residents obey the whole alphabet: stop unlinks in O(1), restart can
// move a record overflow -> bucket and bucket -> overflow, and AdvanceTo jumps
// dispatch the overflow head like any bucket head.
TEST(LawnCapTest, OverflowResidentsStopRestartAndJump) {
  lawn::LawnOptions options;
  options.max_distinct_ttls = 2;
  lawn::LawnTimers lawn(options);
  Fired fired;
  Collect(lawn, fired);

  ASSERT_TRUE(lawn.StartTimer(5, 1).has_value());   // bucket
  ASSERT_TRUE(lawn.StartTimer(7, 2).has_value());   // bucket
  StartResult c = lawn.StartTimer(11, 3);           // overflow
  StartResult d = lawn.StartTimer(13, 4);           // overflow
  ASSERT_TRUE(c.has_value());
  ASSERT_TRUE(d.has_value());
  ASSERT_EQ(lawn.OverflowPopulationSlow(), 2u);

  EXPECT_EQ(lawn.StopTimer(c.value()), TimerError::kOk);
  EXPECT_EQ(lawn.OverflowPopulationSlow(), 1u);

  // Restart the other overflow resident into a bucketed TTL: it leaves the
  // overflow list and fires at now + 5.
  EXPECT_EQ(lawn.RestartTimer(d.value(), 5), TimerError::kOk);
  EXPECT_EQ(lawn.OverflowPopulationSlow(), 0u);

  const std::size_t n = lawn.AdvanceTo(16);
  EXPECT_EQ(n, 3u);
  const Fired expected = {{5, 1}, {5, 4}, {7, 2}};
  Fired got = fired;
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);
}

// starts == expiries + cancels + outstanding, on the scheme's own counters,
// after a seeded churn of every routine. Restarts must not disturb the law.
TEST(LawnConservationTest, CountsBalanceAfterChurn) {
  lawn::LawnOptions options;
  options.max_distinct_ttls = 8;  // force steady overflow traffic too
  lawn::LawnTimers lawn(options);
  rng::Xoshiro256 rng(0xC0DE);

  std::vector<TimerHandle> live;
  std::size_t accepted = 0;
  std::size_t cancelled = 0;
  for (int round = 0; round < 2000; ++round) {
    const Duration ttl = 1 + rng.NextBounded(40);
    StartResult r = lawn.StartTimer(ttl, static_cast<RequestId>(round));
    ASSERT_TRUE(r.has_value());
    live.push_back(r.value());
    ++accepted;
    if (rng.NextBool(0.3) && !live.empty()) {
      const std::size_t at = rng.NextBounded(live.size());
      if (lawn.StopTimer(live[at]) == TimerError::kOk) {
        ++cancelled;
      }
      live[at] = live.back();
      live.pop_back();
    }
    if (rng.NextBool(0.2) && !live.empty()) {
      const std::size_t at = rng.NextBounded(live.size());
      lawn.RestartTimer(live[at], 1 + rng.NextBounded(40));
    }
    lawn.PerTickBookkeeping();
  }
  const metrics::OpCounts counts = lawn.counts();
  EXPECT_EQ(counts.start_calls, accepted);
  EXPECT_EQ(counts.start_calls,
            counts.expiries + cancelled + lawn.outstanding());

  // Drain and re-check: everything resolves, nothing double-fires or leaks.
  while (lawn.outstanding() > 0) {
    lawn.PerTickBookkeeping();
  }
  const metrics::OpCounts drained = lawn.counts();
  EXPECT_EQ(drained.start_calls, drained.expiries + cancelled);
}

// The slop contract, pinned per precision level on both schemes that implement
// the knob: a timer started with interval i fires after exactly
// QuantizeIntervalUp(i, s) ticks — late by < 2^s, never early, grain-aligned.
class SlopBoundTest : public ::testing::TestWithParam<std::uint32_t> {};

void CheckSlopBound(TimerService& service, std::uint32_t slop) {
  Fired fired;
  Collect(service, fired);
  const Tick base = service.now();
  std::vector<Duration> intervals;
  for (RequestId id = 1; id <= 100; ++id) {
    const Duration interval = static_cast<Duration>(id);
    ASSERT_TRUE(service.StartTimer(interval, id).has_value());
    intervals.push_back(interval);
  }
  while (service.outstanding() > 0) {
    service.PerTickBookkeeping();
  }
  ASSERT_EQ(fired.size(), intervals.size());
  const Duration grain = Duration{1} << slop;
  for (const auto& [when, id] : fired) {
    const Duration interval = intervals[id - 1];
    const Duration delay = when - base;
    EXPECT_EQ(delay, QuantizeIntervalUp(interval, slop))
        << service.name() << " slop " << slop << " interval " << interval;
    EXPECT_GE(delay, interval) << "fired EARLY";
    EXPECT_LT(delay, interval + grain) << "fired past the slop bound";
    if (slop > 0) {
      EXPECT_EQ(delay % grain, 0u) << "not grain-aligned";
    }
  }
}

TEST_P(SlopBoundTest, LawnFiresWithinSlop) {
  lawn::LawnOptions options;
  options.slop_bits = GetParam();
  lawn::LawnTimers lawn(options);
  CheckSlopBound(lawn, GetParam());
}

TEST_P(SlopBoundTest, HierarchicalFiresWithinSlop) {
  const std::size_t levels[] = {16, 16, 16};
  HierarchicalWheelOptions options;
  options.slop_bits = GetParam();
  HierarchicalWheel wheel(levels, options);
  CheckSlopBound(wheel, GetParam());
}

// Periodic cadence under slop: the effective period IS the quantized interval,
// and quantization is idempotent, so fires land at k * Q(period) — no drift.
TEST_P(SlopBoundTest, LawnPeriodicCadenceIsQuantizedPeriod) {
  const std::uint32_t slop = GetParam();
  lawn::LawnOptions options;
  options.slop_bits = slop;
  lawn::LawnTimers lawn(options);
  Fired fired;
  Collect(lawn, fired);
  ASSERT_TRUE(lawn.StartPeriodic(5, 42, 3).has_value());
  const Duration q = QuantizeIntervalUp(5, slop);
  for (Tick t = 0; t < 4 * q; ++t) {
    lawn.PerTickBookkeeping();
  }
  const Fired expected = {{q, 42}, {2 * q, 42}, {3 * q, 42}};
  EXPECT_EQ(fired, expected) << "slop " << slop;
  EXPECT_EQ(lawn.outstanding(), 0u);
}

// Slop as a cap-pressure valve: 64 near-miss TTLs collapse into the handful of
// grain classes, so a tight cap is never exceeded.
TEST_P(SlopBoundTest, QuantizationCollapsesNearMissTtls) {
  const std::uint32_t slop = GetParam();
  if (slop == 0) {
    GTEST_SKIP() << "collapse needs a coarse grain";
  }
  lawn::LawnOptions options;
  options.slop_bits = slop;
  lawn::LawnTimers lawn(options);
  for (RequestId id = 1; id <= 64; ++id) {
    ASSERT_TRUE(lawn.StartTimer(static_cast<Duration>(id), id).has_value());
  }
  const Duration grain = Duration{1} << slop;
  const std::size_t classes = static_cast<std::size_t>((64 + grain - 1) / grain);
  EXPECT_EQ(lawn.distinct_ttls(), classes);
  EXPECT_EQ(lawn.OverflowPopulationSlow(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Precision, SlopBoundTest,
                         ::testing::Values(0u, 1u, 3u, 6u),
                         [](const ::testing::TestParamInfo<std::uint32_t>& p) {
                           return "slop" + std::to_string(p.param);
                         });

}  // namespace
}  // namespace twheel
