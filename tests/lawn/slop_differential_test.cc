// Differential model checking at reduced precision: a slop-configured scheme
// against a slop-configured oracle, exact-match. The slop bound is not a
// tolerance band — DriverOptions::slop_bits makes the driver round every expiry
// prediction up to the 2^s grain and build its oracle with the same knob, so a
// scheme that fires even one tick off the QUANTIZED deadline (early, extra
// late, drifting periodic cadence, restart forgetting to re-quantize) diverges
// on the usual set/count/conservation checks.
//
// Covers both schemes that implement the knob — lawn::LawnTimers (where slop
// also collapses TTLs into shared buckets, so the cap fallback runs under
// quantization) and HierarchicalWheel (where quantized intervals cross level
// boundaries differently) — at slop 1, 3, and 6, through the full alphabet:
// restarts, stale pokes, re-entrant handlers, finite periodics, and AdvanceTo
// jumps landing on grain and wheel-rollover pivots.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/hierarchical_wheel.h"
#include "src/lawn/lawn_timers.h"
#include "src/verify/differential_driver.h"

namespace twheel::verify {
namespace {

struct SlopCase {
  std::string label;
  std::function<std::unique_ptr<TimerService>(std::uint32_t slop)> make;
  std::uint32_t slop_bits;
};

void PrintTo(const SlopCase& c, std::ostream* os) { *os << c.label; }

std::vector<SlopCase> AllSlopCases() {
  const auto make_lawn = [](std::uint32_t slop) -> std::unique_ptr<TimerService> {
    lawn::LawnOptions options;
    options.slop_bits = slop;
    return std::make_unique<lawn::LawnTimers>(options);
  };
  // A tight cap: quantized TTL classes spill into the overflow list mid-run,
  // so the fallback path is differentially checked under slop too.
  const auto make_capped = [](std::uint32_t slop) -> std::unique_ptr<TimerService> {
    lawn::LawnOptions options;
    options.slop_bits = slop;
    options.max_distinct_ttls = 6;
    return std::make_unique<lawn::LawnTimers>(options);
  };
  const auto make_hier = [](std::uint32_t slop) -> std::unique_ptr<TimerService> {
    static constexpr std::array<std::size_t, 3> kLevels = {16, 16, 16};
    HierarchicalWheelOptions options;
    options.slop_bits = slop;
    return std::make_unique<HierarchicalWheel>(kLevels, options);
  };
  std::vector<SlopCase> cases;
  for (std::uint32_t slop : {1u, 3u, 6u}) {
    const std::string suffix = "_slop" + std::to_string(slop);
    cases.push_back({"lawn" + suffix, make_lawn, slop});
    cases.push_back({"lawn_capped6" + suffix, make_capped, slop});
    cases.push_back({"hier16x3" + suffix, make_hier, slop});
  }
  return cases;
}

class SlopDifferentialTest : public ::testing::TestWithParam<SlopCase> {};

// Full-alphabet churn at reduced precision: one-shot starts across the grain
// spectrum, restarts (outside and inside handlers), finite periodics whose
// cadence must hold at the QUANTIZED period, and re-entrant handler starts
// (interval 1 quantizes to a full grain — the earliest legal quantized fire).
TEST_P(SlopDifferentialTest, ChurnEpisodesMatchOracle) {
  const SlopCase& c = GetParam();
  std::size_t restarts = 0;
  std::size_t fires = 0;
  for (std::uint64_t seed = 21000; seed < 21040; ++seed) {
    DriverOptions options;
    options.seed = seed;
    options.slop_bits = c.slop_bits;
    options.ticks = 96;
    options.max_interval = 120;
    options.stop_probability = 0.3;
    options.stale_poke_probability = 0.3;
    options.restart_probability = 0.25;
    options.restart_stale_probability = 0.2;
    options.restart_zero_probability = 0.1;
    options.rearm_probability = 0.2;
    options.stop_sibling_probability = 0.15;
    options.start_next_tick_probability = 0.15;
    options.self_poke_probability = 0.1;
    options.periodic_probability = 0.3;
    options.periodic_repeat_max = 4;
    auto service = c.make(c.slop_bits);
    const DriverReport report = RunDifferential(*service, options);
    ASSERT_TRUE(report.ok) << c.label << " seed " << seed << ": "
                           << report.divergence;
    restarts += report.restarts;
    fires += report.periodic_fires;
  }
  EXPECT_GT(restarts, 0u) << c.label;
  EXPECT_GT(fires, 0u) << c.label;
}

// Batched jumps under slop: AdvanceTo windows landing on grain boundaries and
// wheel/hierarchy pivots must dispatch the identical (tick, id) multiset as the
// oracle's tick loop — quantized deadlines cluster many timers onto the same
// grain tick, the worst case for a jump that terminates on the hinted minimum.
TEST_P(SlopDifferentialTest, JumpEpisodesMatchOracle) {
  const SlopCase& c = GetParam();
  std::size_t jumps = 0;
  const Duration grain = Duration{1} << c.slop_bits;
  for (std::uint64_t seed = 22000; seed < 22030; ++seed) {
    DriverOptions options;
    options.seed = seed;
    options.slop_bits = c.slop_bits;
    options.ticks = 80;
    options.max_interval = 120;
    options.stop_probability = 0.25;
    options.restart_probability = 0.2;
    options.periodic_probability = 0.2;
    options.periodic_repeat_max = 3;
    options.jump_probability = 0.5;
    options.max_jump = 96;
    options.jump_pivots = {grain,          grain + 1,      2 * grain,
                           Duration{63},   Duration{64},   Duration{65},
                           Duration{255},  Duration{256},  Duration{257}};
    auto service = c.make(c.slop_bits);
    const DriverReport report = RunDifferential(*service, options);
    ASSERT_TRUE(report.ok) << c.label << " seed " << seed << ": "
                           << report.divergence;
    jumps += report.jumps;
  }
  EXPECT_GT(jumps, 0u) << c.label;
}

INSTANTIATE_TEST_SUITE_P(ReducedPrecision, SlopDifferentialTest,
                         ::testing::ValuesIn(AllSlopCases()),
                         [](const ::testing::TestParamInfo<SlopCase>& param) {
                           return param.param.label;
                         });

}  // namespace
}  // namespace twheel::verify
