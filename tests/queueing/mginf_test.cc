// The Figure 3 queueing model, validated against simulation: Little's law for the
// outstanding-timer count, residual-life means, and the renewal-model scan
// fractions that drive the Section 3.2 insertion-cost predictions.

#include <gtest/gtest.h>

#include "src/baselines/sorted_list_timers.h"
#include "src/queueing/mginf.h"
#include "src/workload/workload.h"

namespace twheel::queueing {
namespace {

using workload::IntervalKind;
using workload::WorkloadSpec;

TEST(MginfTest, MomentsOfStandardDistributions) {
  auto exp_m = ExponentialMoments(100.0);
  EXPECT_DOUBLE_EQ(exp_m.mean, 100.0);
  EXPECT_DOUBLE_EQ(exp_m.second, 20000.0);

  auto uni = UniformMoments(0.0, 60.0);
  EXPECT_DOUBLE_EQ(uni.mean, 30.0);
  EXPECT_DOUBLE_EQ(uni.second, 1200.0);

  auto con = ConstantMoments(42.0);
  EXPECT_DOUBLE_EQ(con.mean, 42.0);
  EXPECT_DOUBLE_EQ(con.second, 42.0 * 42.0);
}

TEST(MginfTest, ResidualLifeMeans) {
  // Exponential: residual mean equals the mean (memorylessness).
  auto exp_m = ExponentialMoments(100.0);
  EXPECT_DOUBLE_EQ(ResidualLifeMean(exp_m.mean, exp_m.second), 100.0);
  // Uniform[0,a]: residual mean a/3.
  auto uni = UniformMoments(0.0, 60.0);
  EXPECT_DOUBLE_EQ(ResidualLifeMean(uni.mean, uni.second), 20.0);
  // Constant c: residual mean c/2.
  auto con = ConstantMoments(42.0);
  EXPECT_DOUBLE_EQ(ResidualLifeMean(con.mean, con.second), 21.0);
}

TEST(MginfTest, ScanFractions) {
  EXPECT_DOUBLE_EQ(ScanFractionFrontExponential(), 0.5);
  EXPECT_NEAR(ScanFractionFrontUniform(0.0, 60.0), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(ScanFractionFrontConstant(), 1.0);
  EXPECT_DOUBLE_EQ(ScanFractionRear(2.0 / 3.0), 1.0 / 3.0);
  // Narrow uniform approaches the constant case's asymmetry midpoint from below.
  EXPECT_GT(ScanFractionFrontUniform(100.0, 101.0), 0.99);
}

TEST(MginfTest, PaperClosedFormsQuoted) {
  EXPECT_DOUBLE_EQ(PaperInsertCostExponentialFront(30.0), 22.0);
  EXPECT_DOUBLE_EQ(PaperInsertCostUniformFront(30.0), 17.0);
  EXPECT_DOUBLE_EQ(PaperInsertCostExponentialRear(30.0), 12.0);
}

TEST(MginfSimulationTest, LittlesLawHoldsForExponential) {
  WorkloadSpec spec;
  spec.seed = 21;
  spec.intervals = IntervalKind::kExponential;
  spec.interval_mean = 64.0;
  spec.arrival_rate = 0.5;
  spec.warmup_starts = 2000;
  spec.measured_starts = 20000;
  SortedListTimers timers;
  auto result = workload::Run(timers, spec);
  double predicted = ExpectedOutstanding(0.5, 64.0);
  EXPECT_NEAR(result.outstanding.mean(), predicted, predicted * 0.06);
}

TEST(MginfSimulationTest, LittlesLawHoldsForUniform) {
  WorkloadSpec spec;
  spec.seed = 22;
  spec.intervals = IntervalKind::kUniform;
  spec.interval_lo = 1;
  spec.interval_hi = 99;
  spec.arrival_rate = 1.0;
  spec.warmup_starts = 2000;
  spec.measured_starts = 20000;
  SortedListTimers timers;
  auto result = workload::Run(timers, spec);
  double predicted = ExpectedOutstanding(1.0, 50.0);
  EXPECT_NEAR(result.outstanding.mean(), predicted, predicted * 0.06);
}

TEST(MginfSimulationTest, FrontScanFractionMatchesExponentialModel) {
  // Measured comparisons per insert / outstanding ~= ScanFractionFrontExponential.
  WorkloadSpec spec;
  spec.seed = 23;
  spec.intervals = IntervalKind::kExponential;
  spec.interval_mean = 64.0;
  spec.arrival_rate = 1.0;
  spec.warmup_starts = 2000;
  spec.measured_starts = 30000;
  SortedListTimers timers(SearchDirection::kFromFront);
  auto result = workload::Run(timers, spec);
  double n = result.outstanding.mean();
  double measured_fraction = (result.start_comparisons.mean() - 1.0) / n;
  EXPECT_NEAR(measured_fraction, ScanFractionFrontExponential(), 0.05);
}

TEST(MginfSimulationTest, RearScanCheaperThanFrontForUniform) {
  // The rear-search optimization's benefit grows with the asymmetry of the residual
  // distribution; for uniform it is a factor of two (1/3 vs 2/3 of the list).
  WorkloadSpec spec;
  spec.seed = 24;
  spec.intervals = IntervalKind::kUniform;
  spec.interval_lo = 1;
  spec.interval_hi = 127;
  spec.arrival_rate = 1.0;
  spec.warmup_starts = 2000;
  spec.measured_starts = 30000;

  SortedListTimers front(SearchDirection::kFromFront);
  auto rf = workload::Run(front, spec);
  SortedListTimers rear(SearchDirection::kFromRear);
  auto rr = workload::Run(rear, spec);

  double n = rf.outstanding.mean();
  EXPECT_NEAR((rf.start_comparisons.mean() - 1.0) / n,
              ScanFractionFrontUniform(1.0, 127.0), 0.05);
  EXPECT_NEAR((rr.start_comparisons.mean() - 1.0) / n,
              ScanFractionRear(ScanFractionFrontUniform(1.0, 127.0)), 0.05);
  EXPECT_LT(rr.start_comparisons.mean(), rf.start_comparisons.mean());
}

}  // namespace
}  // namespace twheel::queueing
