// Scale and endurance: the paper's closing claim is that "a large number of timers
// can be implemented efficiently", so the wheels must stay correct and allocation-
// stable at populations well beyond the unit tests' sizes.

#include <gtest/gtest.h>

#include <vector>

#include "src/core/timer_facility.h"
#include "src/rng/rng.h"

namespace twheel {
namespace {

struct StressCase {
  SchemeId scheme;
  std::size_t timers;
};

class StressTest : public ::testing::TestWithParam<StressCase> {};

TEST_P(StressTest, LargePopulationChurnsAndDrainsExactly) {
  FacilityConfig config;
  config.scheme = GetParam().scheme;
  config.wheel_size = 16384;
  config.level_sizes = {256, 64, 64};
  auto service = MakeTimerService(config);

  std::uint64_t fired = 0;
  service->set_expiry_handler([&](RequestId, Tick) { ++fired; });

  rng::Xoshiro256 gen(77);
  const std::size_t n = GetParam().timers;
  std::vector<TimerHandle> handles;
  handles.reserve(n);

  // Phase 1: mass arrival.
  for (RequestId id = 0; id < n; ++id) {
    auto result = service->StartTimer(1 + gen.NextBounded(16000), id);
    ASSERT_TRUE(result.has_value());
    handles.push_back(result.value());
  }
  ASSERT_EQ(service->outstanding(), n);

  // Phase 2: cancel a third, re-arm a sixth, interleaved with time.
  std::uint64_t cancelled = 0, rearmed = 0;
  for (std::size_t i = 0; i < n; i += 3) {
    if (service->StopTimer(handles[i]) == TimerError::kOk) {
      ++cancelled;
      if (i % 2 == 0) {
        auto result = service->StartTimer(1 + gen.NextBounded(16000), i);
        ASSERT_TRUE(result.has_value());
        ++rearmed;
      }
    }
    if (i % 1024 == 0) {
      service->PerTickBookkeeping();
    }
  }

  // Phase 3: drain completely.
  Tick guard = 0;
  while (service->outstanding() > 0) {
    service->PerTickBookkeeping();
    ASSERT_LT(++guard, 40000u) << "population failed to drain";
  }

  // Conservation: every start either fired or was cancelled.
  const std::uint64_t total_starts = n + rearmed;
  EXPECT_EQ(fired + cancelled, total_starts);
  EXPECT_EQ(service->counts().expiries, fired);
}

std::string StressName(const ::testing::TestParamInfo<StressCase>& info) {
  std::string name = SchemeName(info.param.scheme);
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  return name + "_" + std::to_string(info.param.timers);
}

INSTANTIATE_TEST_SUITE_P(
    Populations, StressTest,
    ::testing::Values(StressCase{SchemeId::kScheme3Heap, 200000},
                      StressCase{SchemeId::kScheme3Avl, 100000},
                      StressCase{SchemeId::kScheme4BasicWheel, 200000},
                      StressCase{SchemeId::kScheme4HybridList, 100000},
                      StressCase{SchemeId::kScheme5HashedSorted, 100000},
                      StressCase{SchemeId::kScheme6HashedUnsorted, 200000},
                      StressCase{SchemeId::kScheme7Hierarchical, 200000}),
    StressName);

}  // namespace
}  // namespace twheel
