// Differential testing: every scheme, fed an identical randomized request stream,
// must produce the identical expiry trace — and that trace must equal the one
// predicted directly from the stream (start + interval for every unstopped timer).
//
// This is the strongest correctness pin in the repository: Schemes 1-6 and Scheme 7
// with full migration all promise *exact* expiry, so any divergence in (tick,
// request) multisets is a bug in somebody's bookkeeping. Order within a tick is
// deliberately not compared ("Timer modules need not meet this [FIFO] restriction",
// Section 4.2).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/core/timer_facility.h"
#include "src/workload/workload.h"

namespace twheel {
namespace {

using workload::ArrivalKind;
using workload::IntervalKind;
using workload::WorkloadSpec;

struct DiffCase {
  std::string label;
  WorkloadSpec spec;
};

std::vector<DiffCase> DifferentialCases() {
  std::vector<DiffCase> cases;

  {
    WorkloadSpec s;
    s.seed = 101;
    s.intervals = IntervalKind::kExponential;
    s.interval_mean = 50.0;
    s.interval_cap = 400;
    s.arrival_rate = 1.0;
    s.measured_starts = 4000;
    cases.push_back({"poisson_exponential_all_expire", s});
  }
  {
    WorkloadSpec s;
    s.seed = 102;
    s.intervals = IntervalKind::kExponential;
    s.interval_mean = 50.0;
    s.interval_cap = 400;
    s.arrival_rate = 2.0;
    s.stop_fraction = 0.7;  // retransmission-style: most timers cancelled
    s.measured_starts = 4000;
    cases.push_back({"poisson_exponential_mostly_stopped", s});
  }
  {
    WorkloadSpec s;
    s.seed = 103;
    s.intervals = IntervalKind::kUniform;
    s.interval_lo = 1;
    s.interval_hi = 300;
    s.arrival_rate = 1.5;
    s.stop_fraction = 0.3;
    s.measured_starts = 4000;
    cases.push_back({"poisson_uniform_mixed", s});
  }
  {
    WorkloadSpec s;
    s.seed = 104;
    s.intervals = IntervalKind::kConstant;
    s.interval_lo = 7;
    s.arrivals = ArrivalKind::kPeriodic;
    s.arrival_gap = 1;
    s.measured_starts = 3000;
    cases.push_back({"periodic_constant", s});
  }
  {
    WorkloadSpec s;
    s.seed = 105;
    s.intervals = IntervalKind::kConstant;
    s.interval_lo = 64;  // exactly a hashed-wheel table size: exercises round logic
    s.arrival_rate = 0.5;
    s.stop_fraction = 0.5;
    s.measured_starts = 3000;
    cases.push_back({"constant_equal_to_table_size", s});
  }
  {
    WorkloadSpec s;
    s.seed = 106;
    s.intervals = IntervalKind::kPareto;
    s.interval_lo = 2;
    s.pareto_alpha = 1.3;
    s.interval_cap = 400;  // keep the replay horizon sane
    s.arrival_rate = 1.0;
    s.stop_fraction = 0.2;
    s.measured_starts = 3000;
    cases.push_back({"pareto_heavy_tail_capped", s});
  }
  {
    WorkloadSpec s;
    s.seed = 107;
    s.intervals = IntervalKind::kGeometric;
    s.interval_mean = 30.0;
    s.arrival_rate = 3.0;  // bursty: several starts per tick
    s.stop_fraction = 0.4;
    s.measured_starts = 4000;
    cases.push_back({"geometric_bursty_arrivals", s});
  }
  {
    WorkloadSpec s;
    s.seed = 108;
    s.intervals = IntervalKind::kUniform;
    s.interval_lo = 380;
    s.interval_hi = 400;  // everything lands many revolutions out on small wheels
    s.arrival_rate = 0.8;
    s.measured_starts = 2000;
    cases.push_back({"long_intervals_many_rounds", s});
  }

  return cases;
}

FacilityConfig SchemeConfig(SchemeId id) {
  FacilityConfig config;
  config.scheme = id;
  // All differential intervals are <= 400 ticks.
  config.wheel_size = id == SchemeId::kScheme4BasicWheel ? 512 : 64;
  config.level_sizes = {16, 16, 16};
  return config;
}

class DifferentialTest : public ::testing::TestWithParam<DiffCase> {};

TEST_P(DifferentialTest, AllSchemesMatchPredictedTrace) {
  const WorkloadSpec& spec = GetParam().spec;
  const auto predicted = workload::PredictedTrace(spec);
  ASSERT_FALSE(predicted.empty()) << "vacuous spec";

  for (SchemeId id : kAllSchemes) {
    auto service = MakeTimerService(SchemeConfig(id));
    auto result = workload::Run(*service, spec);
    EXPECT_EQ(result.starts_rejected, 0u) << SchemeName(id);
    auto actual = workload::NormalizedTrace(result.trace);
    ASSERT_EQ(actual.size(), predicted.size())
        << SchemeName(id) << ": expiry count mismatch";
    // Element-wise comparison with a readable first-divergence report.
    for (std::size_t i = 0; i < actual.size(); ++i) {
      ASSERT_EQ(actual[i], predicted[i])
          << SchemeName(id) << ": first divergence at event " << i << " (actual tick "
          << actual[i].tick << " req " << actual[i].request_id << ", predicted tick "
          << predicted[i].tick << " req " << predicted[i].request_id << ")";
    }
  }
}

TEST_P(DifferentialTest, SchemesAgreeOnOutstandingCountAtEnd) {
  const WorkloadSpec& spec = GetParam().spec;
  std::vector<std::size_t> finals;
  for (SchemeId id : kAllSchemes) {
    auto service = MakeTimerService(SchemeConfig(id));
    (void)workload::Run(*service, spec);
    finals.push_back(service->outstanding());
  }
  for (std::size_t i = 1; i < finals.size(); ++i) {
    EXPECT_EQ(finals[i], finals[0])
        << SchemeName(kAllSchemes[i]) << " vs " << SchemeName(kAllSchemes[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, DifferentialTest,
                         ::testing::ValuesIn(DifferentialCases()),
                         [](const ::testing::TestParamInfo<DiffCase>& param_info) {
                           return param_info.param.label;
                         });

}  // namespace
}  // namespace twheel
