// Complexity-shape assertions: Figures 4 and 6 as executable growth-rate checks.
//
// For each scheme, measure per-operation op counts at n and at 8n of steady-state
// population; the ratio must match the figure's asymptotic class:
//   O(1)      -> ratio ~ 1
//   O(log n)  -> ratio ~ log(8n)/log(n) (< 2 at these sizes)
//   O(n)      -> ratio ~ 8
// Op counts make this exact and machine-independent, where wall-clock tests would
// flake.

#include <gtest/gtest.h>

#include <memory>

#include "src/core/timer_facility.h"
#include "src/rng/distributions.h"
#include "src/rng/rng.h"

namespace twheel {
namespace {

constexpr std::size_t kSmallN = 2048;
constexpr std::size_t kLargeN = 16384;  // 8x

std::unique_ptr<TimerService> LoadedService(SchemeId id, std::size_t n) {
  FacilityConfig config;
  config.scheme = id;
  config.wheel_size = id == SchemeId::kScheme4BasicWheel ? (1 << 20) : 256;
  config.level_sizes = {256, 64, 64};
  auto service = MakeTimerService(config);
  rng::Xoshiro256 gen(5);
  // Far-future band: diverse ranks for the sorted structures, but nothing expiring
  // during the short measurement windows (which would pollute the per-op costs).
  rng::UniformInterval dist(1 << 17, 1 << 18);
  for (std::size_t i = 0; i < n; ++i) {
    auto result = service->StartTimer(dist.Draw(gen), i);
    EXPECT_TRUE(result.has_value());
  }
  return service;
}

// Average comparisons per start+stop pair at population n.
double StartCost(SchemeId id, std::size_t n) {
  auto service = LoadedService(id, n);
  rng::Xoshiro256 gen(6);
  rng::UniformInterval dist(1 << 17, 1 << 18);
  const auto before = service->counts();
  constexpr int kOps = 300;
  for (int i = 0; i < kOps; ++i) {
    auto handle = service->StartTimer(dist.Draw(gen), 0);
    EXPECT_TRUE(handle.has_value());
    EXPECT_EQ(service->StopTimer(handle.value()), TimerError::kOk);
  }
  const auto delta = service->counts() - before;
  return static_cast<double>(delta.comparisons) / kOps;
}

// Average bookkeeping ops per tick at population n (nothing expiring).
double TickCost(SchemeId id, std::size_t n) {
  auto service = LoadedService(id, n);
  const auto before = service->counts();
  constexpr Duration kTicks = 256;
  service->AdvanceBy(kTicks);
  const auto delta = service->counts() - before;
  return static_cast<double>(delta.TickWork() + delta.comparisons) /
         static_cast<double>(kTicks);
}

double Ratio(double large, double small) { return large / std::max(small, 1e-9); }

TEST(ComplexityShapeTest, Scheme1TickIsLinearStartIsConstant) {
  EXPECT_NEAR(Ratio(TickCost(SchemeId::kScheme1Unordered, kLargeN),
                    TickCost(SchemeId::kScheme1Unordered, kSmallN)),
              8.0, 0.5);
  EXPECT_LT(StartCost(SchemeId::kScheme1Unordered, kLargeN), 1.0);
}

TEST(ComplexityShapeTest, Scheme2StartIsLinearTickIsConstant) {
  EXPECT_NEAR(Ratio(StartCost(SchemeId::kScheme2SortedFront, kLargeN),
                    StartCost(SchemeId::kScheme2SortedFront, kSmallN)),
              8.0, 1.0);
  EXPECT_NEAR(Ratio(TickCost(SchemeId::kScheme2SortedFront, kLargeN),
                    TickCost(SchemeId::kScheme2SortedFront, kSmallN)),
              1.0, 0.2);
}

TEST(ComplexityShapeTest, TreeStartsGrowLogarithmically) {
  for (SchemeId id : {SchemeId::kScheme3Bst, SchemeId::kScheme3Avl}) {
    double small = StartCost(id, kSmallN);
    double large = StartCost(id, kLargeN);
    // log2(16384)/log2(2048) = 14/11 ~= 1.27; allow generous slack, but far below
    // linear growth.
    EXPECT_GT(large, small) << SchemeName(id);
    EXPECT_LT(Ratio(large, small), 2.0) << SchemeName(id);
  }
}

TEST(ComplexityShapeTest, WheelsAreConstantInPopulation) {
  for (SchemeId id :
       {SchemeId::kScheme4BasicWheel, SchemeId::kScheme6HashedUnsorted}) {
    EXPECT_LT(StartCost(id, kLargeN), 1.0) << SchemeName(id);
  }
  // Scheme 4 per-tick: O(1) absolutely (range covers all intervals, no rounds).
  EXPECT_NEAR(Ratio(TickCost(SchemeId::kScheme4BasicWheel, kLargeN),
                    TickCost(SchemeId::kScheme4BasicWheel, kSmallN)),
              1.0, 0.2);
  // Scheme 6 per-tick: n/TableSize — linear in n by design, 8x here. That IS the
  // figure's O(1)-per-timer-per-revolution accounting.
  EXPECT_NEAR(Ratio(TickCost(SchemeId::kScheme6HashedUnsorted, kLargeN),
                    TickCost(SchemeId::kScheme6HashedUnsorted, kSmallN)),
              8.0, 1.0);
}

TEST(ComplexityShapeTest, Scheme5StartGrowsWithBucketLoad) {
  // Above TableSize, Scheme 5's sorted-bucket insert is linear in n/M.
  double small = StartCost(SchemeId::kScheme5HashedSorted, kSmallN);
  double large = StartCost(SchemeId::kScheme5HashedSorted, kLargeN);
  EXPECT_NEAR(Ratio(large, small), 8.0, 2.0);
}

TEST(ComplexityShapeTest, Scheme7StartIsConstantInPopulation) {
  double small = StartCost(SchemeId::kScheme7Hierarchical, kSmallN);
  double large = StartCost(SchemeId::kScheme7Hierarchical, kLargeN);
  // Level search depends on m, not on n.
  EXPECT_NEAR(Ratio(large, small), 1.0, 0.25);
  EXPECT_LT(large, 4.0);
}

}  // namespace
}  // namespace twheel
