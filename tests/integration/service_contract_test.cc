// The TimerService contract, enforced uniformly across all seven schemes.
//
// Section 2 defines the model every scheme must implement; these parameterized tests
// are that model's executable form. Each case runs against every SchemeId (including
// both Scheme 2 search directions), so a scheme cannot pass by accident of its data
// structure.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/core/timer_facility.h"

namespace twheel {
namespace {

FacilityConfig ConfigFor(SchemeId id) {
  FacilityConfig config;
  config.scheme = id;
  config.wheel_size = 512;                // covers every interval used below
  config.level_sizes = {16, 16, 16};      // span 4096, max interval 3840
  return config;
}

class ServiceContractTest : public ::testing::TestWithParam<SchemeId> {
 protected:
  void SetUp() override {
    service_ = MakeTimerService(ConfigFor(GetParam()));
    service_->set_expiry_handler([this](RequestId id, Tick when) {
      expiries_.push_back({when, id});
    });
  }

  std::vector<std::pair<Tick, RequestId>> expiries_;
  std::unique_ptr<TimerService> service_;
};

TEST_P(ServiceContractTest, StartsAtTickZero) {
  EXPECT_EQ(service_->now(), 0u);
  EXPECT_EQ(service_->outstanding(), 0u);
}

TEST_P(ServiceContractTest, TimerExpiresAtExactTick) {
  auto result = service_->StartTimer(5, 42);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(service_->outstanding(), 1u);

  EXPECT_EQ(service_->AdvanceBy(4), 0u) << "expired early";
  EXPECT_TRUE(expiries_.empty());
  EXPECT_EQ(service_->PerTickBookkeeping(), 1u);
  ASSERT_EQ(expiries_.size(), 1u);
  EXPECT_EQ(expiries_[0].first, 5u);
  EXPECT_EQ(expiries_[0].second, 42u);
  EXPECT_EQ(service_->outstanding(), 0u);
}

TEST_P(ServiceContractTest, IntervalOneExpiresOnNextTick) {
  ASSERT_TRUE(service_->StartTimer(1, 7).has_value());
  EXPECT_EQ(service_->PerTickBookkeeping(), 1u);
  ASSERT_EQ(expiries_.size(), 1u);
  EXPECT_EQ(expiries_[0].first, 1u);
}

TEST_P(ServiceContractTest, ZeroIntervalRejected) {
  auto result = service_->StartTimer(0, 1);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error(), TimerError::kZeroInterval);
  EXPECT_EQ(service_->outstanding(), 0u);
}

TEST_P(ServiceContractTest, StopPreventsExpiry) {
  auto result = service_->StartTimer(10, 1);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(service_->StopTimer(result.value()), TimerError::kOk);
  EXPECT_EQ(service_->outstanding(), 0u);
  service_->AdvanceBy(20);
  EXPECT_TRUE(expiries_.empty());
}

TEST_P(ServiceContractTest, DoubleStopReportsNoSuchTimer) {
  auto result = service_->StartTimer(10, 1);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(service_->StopTimer(result.value()), TimerError::kOk);
  EXPECT_EQ(service_->StopTimer(result.value()), TimerError::kNoSuchTimer);
}

TEST_P(ServiceContractTest, StopAfterExpiryReportsNoSuchTimer) {
  auto result = service_->StartTimer(3, 1);
  ASSERT_TRUE(result.has_value());
  service_->AdvanceBy(3);
  ASSERT_EQ(expiries_.size(), 1u);
  EXPECT_EQ(service_->StopTimer(result.value()), TimerError::kNoSuchTimer);
}

TEST_P(ServiceContractTest, InvalidHandleRejected) {
  EXPECT_EQ(service_->StopTimer(kInvalidHandle), TimerError::kNoSuchTimer);
  EXPECT_EQ(service_->StopTimer(TimerHandle{12345, 99}), TimerError::kNoSuchTimer);
}

TEST_P(ServiceContractTest, StaleHandleAfterSlotReuseRejected) {
  // Start and expire timer A; its arena slot is recycled for B. A's handle must not
  // cancel B (the generation counter is the defense).
  auto a = service_->StartTimer(2, 1);
  ASSERT_TRUE(a.has_value());
  service_->AdvanceBy(2);
  ASSERT_EQ(expiries_.size(), 1u);

  auto b = service_->StartTimer(5, 2);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b.value().slot, a.value().slot) << "arena should recycle the slot LIFO";
  EXPECT_EQ(service_->StopTimer(a.value()), TimerError::kNoSuchTimer);
  EXPECT_EQ(service_->outstanding(), 1u);

  service_->AdvanceBy(5);
  ASSERT_EQ(expiries_.size(), 2u);
  EXPECT_EQ(expiries_[1].second, 2u);
}

TEST_P(ServiceContractTest, SimultaneousExpiriesAllFire) {
  for (RequestId id = 0; id < 5; ++id) {
    ASSERT_TRUE(service_->StartTimer(8, id).has_value());
  }
  EXPECT_EQ(service_->AdvanceBy(8), 5u);
  std::set<RequestId> got;
  for (const auto& [tick, id] : expiries_) {
    EXPECT_EQ(tick, 8u);
    got.insert(id);
  }
  EXPECT_EQ(got, (std::set<RequestId>{0, 1, 2, 3, 4}));
}

TEST_P(ServiceContractTest, DistinctExpiriesFireInTimeOrder) {
  ASSERT_TRUE(service_->StartTimer(30, 30).has_value());
  ASSERT_TRUE(service_->StartTimer(10, 10).has_value());
  ASSERT_TRUE(service_->StartTimer(20, 20).has_value());
  service_->AdvanceBy(35);
  ASSERT_EQ(expiries_.size(), 3u);
  EXPECT_EQ(expiries_[0], (std::pair<Tick, RequestId>{10, 10}));
  EXPECT_EQ(expiries_[1], (std::pair<Tick, RequestId>{20, 20}));
  EXPECT_EQ(expiries_[2], (std::pair<Tick, RequestId>{30, 30}));
}

TEST_P(ServiceContractTest, OutstandingTracksLifecycle) {
  auto a = service_->StartTimer(100, 1);
  auto b = service_->StartTimer(200, 2);
  auto c = service_->StartTimer(3, 3);
  ASSERT_TRUE(a.has_value() && b.has_value() && c.has_value());
  EXPECT_EQ(service_->outstanding(), 3u);
  service_->AdvanceBy(3);  // c expires
  EXPECT_EQ(service_->outstanding(), 2u);
  EXPECT_EQ(service_->StopTimer(a.value()), TimerError::kOk);
  EXPECT_EQ(service_->outstanding(), 1u);
  EXPECT_EQ(service_->StopTimer(b.value()), TimerError::kOk);
  EXPECT_EQ(service_->outstanding(), 0u);
}

TEST_P(ServiceContractTest, CapacityBoundHonored) {
  FacilityConfig config = ConfigFor(GetParam());
  config.max_timers = 4;
  auto bounded = MakeTimerService(config);
  for (RequestId id = 0; id < 4; ++id) {
    ASSERT_TRUE(bounded->StartTimer(10, id).has_value());
  }
  auto fifth = bounded->StartTimer(10, 4);
  ASSERT_FALSE(fifth.has_value());
  EXPECT_EQ(fifth.error(), TimerError::kNoCapacity);
  // Freeing one slot re-admits a start. (For the lazy-cancellation leftist heap the
  // cancelled record still occupies its slot, so capacity frees on expiry instead.)
  bounded->AdvanceBy(10);
  EXPECT_TRUE(bounded->StartTimer(10, 5).has_value());
}

TEST_P(ServiceContractTest, RestartInsideExpiryHandlerWorks) {
  // A common client pattern (periodic timers): EXPIRY_PROCESSING immediately
  // re-arms. The service must tolerate reentrant StartTimer from the handler.
  auto config = ConfigFor(GetParam());
  auto service = MakeTimerService(config);
  int fires = 0;
  service->set_expiry_handler([&](RequestId id, Tick) {
    ++fires;
    if (fires < 3) {
      ASSERT_TRUE(service->StartTimer(4, id + 1).has_value());
    }
  });
  ASSERT_TRUE(service->StartTimer(4, 0).has_value());
  service->AdvanceBy(12);
  EXPECT_EQ(fires, 3);
}

TEST_P(ServiceContractTest, HandlerMayStopSiblingDueSameTick) {
  // Regression: an expiry handler cancelling a timer that is due on the SAME tick
  // but not yet dispatched must suppress that dispatch — and must not corrupt the
  // bookkeeping walk (saved-next iteration would use-after-free here).
  auto config = ConfigFor(GetParam());
  auto service = MakeTimerService(config);
  std::vector<RequestId> fired;
  TimerHandle victims[2];
  service->set_expiry_handler([&](RequestId id, Tick) {
    fired.push_back(id);
    if (id == 0) {
      // Cancel both co-expiring siblings; at least one is still undispatched.
      (void)service->StopTimer(victims[0]);
      (void)service->StopTimer(victims[1]);
    }
  });
  ASSERT_TRUE(service->StartTimer(6, 0).has_value());
  victims[0] = service->StartTimer(6, 1).value();
  victims[1] = service->StartTimer(6, 2).value();
  service->AdvanceBy(6);
  // Timer 0 fired; the victims fired only if they were dispatched before timer 0.
  ASSERT_FALSE(fired.empty());
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_NE(fired[i], fired[0]);
  }
  EXPECT_EQ(service->outstanding(), 0u);
  service->AdvanceBy(64);
  EXPECT_LE(fired.size(), 3u);
}

TEST_P(ServiceContractTest, HandlerRearmRevolutionMultipleNotVisitedTwice) {
  // Regression: re-arming from the handler with an interval that maps the new timer
  // back into the structure region being processed (e.g. a multiple of a hashed
  // wheel's table size, which lands in the bucket under the cursor) must schedule
  // it a full revolution out, not expire it instantly or double-visit it.
  auto config = ConfigFor(GetParam());
  auto service = MakeTimerService(config);
  // 512 is the hashed wheels' table size (the colliding case) and a clean multiple
  // for Scheme 7's levels. Scheme 4 cannot express interval == wheel size at all —
  // that immunity is by design — so it runs the test one tick short of a lap.
  const Duration interval = GetParam() == SchemeId::kScheme4BasicWheel ? 511 : 512;
  std::vector<Tick> fired;
  int rearms = 0;
  service->set_expiry_handler([&](RequestId id, Tick when) {
    fired.push_back(when);
    if (++rearms <= 3) {
      ASSERT_TRUE(service->StartTimer(interval, id).has_value());
    }
  });
  ASSERT_TRUE(service->StartTimer(interval, 7).has_value());
  service->AdvanceBy(4 * interval + 8);
  ASSERT_EQ(fired.size(), 4u);
  for (std::size_t i = 0; i < fired.size(); ++i) {
    EXPECT_EQ(fired[i], (i + 1) * interval) << "re-arm " << i;
  }
}

TEST_P(ServiceContractTest, OpCountsAdvance) {
  ASSERT_TRUE(service_->StartTimer(4, 0).has_value());
  auto h = service_->StartTimer(9, 1);
  ASSERT_TRUE(h.has_value());
  service_->AdvanceBy(4);
  ASSERT_EQ(service_->StopTimer(h.value()), TimerError::kOk);
  const auto& c = service_->counts();
  EXPECT_EQ(c.start_calls, 2u);
  EXPECT_EQ(c.stop_calls, 1u);
  EXPECT_EQ(c.ticks, 4u);
  EXPECT_EQ(c.expiries, 1u);
  EXPECT_EQ(c.insert_link_ops, 2u);
  EXPECT_EQ(c.expiry_dispatches, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, ServiceContractTest, ::testing::ValuesIn(kAllSchemes),
    [](const ::testing::TestParamInfo<SchemeId>& param_info) {
      std::string name = SchemeName(param_info.param);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

}  // namespace
}  // namespace twheel
