// Seed-sweep differential fuzzing: many random workload configurations, each run
// through every scheme (plus the TEGAS wheel) and compared against the predicted
// trace. Complements differential_test.cc's hand-picked cases with breadth — the
// workload parameters themselves are drawn from the seed.

#include <gtest/gtest.h>

#include <memory>

#include "src/baselines/sorted_list_timers.h"
#include "src/concurrent/locked_service.h"
#include "src/concurrent/sharded_wheel.h"
#include "src/core/timer_facility.h"
#include "src/hw/timer_chip.h"
#include "src/rng/rng.h"
#include "src/sim/tegas_wheel.h"
#include "src/workload/workload.h"

namespace twheel {
namespace {

using workload::ArrivalKind;
using workload::IntervalKind;
using workload::WorkloadSpec;

WorkloadSpec SpecFromSeed(std::uint64_t seed) {
  rng::Xoshiro256 gen(seed * 7919 + 13);
  WorkloadSpec spec;
  spec.seed = seed;
  spec.arrivals = gen.NextBool(0.8) ? ArrivalKind::kPoisson : ArrivalKind::kPeriodic;
  spec.arrival_rate = 0.25 + gen.NextDouble() * 4.0;
  spec.arrival_gap = 1 + gen.NextBounded(4);
  switch (gen.NextBounded(5)) {
    case 0:
      spec.intervals = IntervalKind::kConstant;
      spec.interval_lo = 1 + gen.NextBounded(300);
      break;
    case 1:
      spec.intervals = IntervalKind::kUniform;
      spec.interval_lo = 1 + gen.NextBounded(50);
      spec.interval_hi = spec.interval_lo + gen.NextBounded(300);
      break;
    case 2:
      spec.intervals = IntervalKind::kExponential;
      spec.interval_mean = 1.0 + gen.NextDouble() * 150.0;
      break;
    case 3:
      spec.intervals = IntervalKind::kPareto;
      spec.interval_lo = 1 + gen.NextBounded(5);
      spec.pareto_alpha = 1.2 + gen.NextDouble();
      break;
    default:
      spec.intervals = IntervalKind::kGeometric;
      spec.interval_mean = 2.0 + gen.NextDouble() * 100.0;
      break;
  }
  spec.interval_cap = 400;  // all schemes configured to cover this range exactly
  spec.stop_fraction = gen.NextDouble() * 0.9;
  spec.measured_starts = 1500;
  return spec;
}

class RandomizedSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomizedSweepTest, AllStructuresMatchPrediction) {
  const WorkloadSpec spec = SpecFromSeed(GetParam());
  const auto predicted = workload::PredictedTrace(spec);

  for (SchemeId id : kAllSchemes) {
    FacilityConfig config;
    config.scheme = id;
    config.wheel_size = id == SchemeId::kScheme4BasicWheel ? 512 : 32;
    config.level_sizes = {8, 8, 16};  // span 1024, max interval 896 >= 400
    auto service = MakeTimerService(config);
    auto result = workload::Run(*service, spec);
    EXPECT_EQ(result.starts_rejected, 0u) << SchemeName(id);
    EXPECT_EQ(workload::NormalizedTrace(result.trace), predicted)
        << SchemeName(id) << " diverged on seed " << GetParam();
  }

  for (sim::RotatePolicy policy :
       {sim::RotatePolicy::kFullCycle, sim::RotatePolicy::kHalfCycle}) {
    sim::TegasWheel wheel(32, policy);
    auto result = workload::Run(wheel, spec);
    EXPECT_EQ(workload::NormalizedTrace(result.trace), predicted)
        << wheel.name() << " diverged on seed " << GetParam();
  }

  // The wrappers and the hardware-assist model are TimerServices too; none may
  // alter observable behaviour.
  {
    hw::ChipAssistedWheel chip(32);
    auto result = workload::Run(chip, spec);
    EXPECT_EQ(workload::NormalizedTrace(result.trace), predicted)
        << "chip-assisted wheel diverged on seed " << GetParam();
  }
  {
    concurrent::LockedService locked(std::make_unique<SortedListTimers>());
    auto result = workload::Run(locked, spec);
    EXPECT_EQ(workload::NormalizedTrace(result.trace), predicted)
        << "locked wrapper diverged on seed " << GetParam();
  }
  {
    concurrent::ShardedWheel sharded(4, 32);
    auto result = workload::Run(sharded, spec);
    EXPECT_EQ(workload::NormalizedTrace(result.trace), predicted)
        << "sharded wheel diverged on seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedSweepTest, ::testing::Range<std::uint64_t>(1, 33));

}  // namespace
}  // namespace twheel
