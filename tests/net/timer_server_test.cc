// The networked timer server: protocol semantics over scripted packets, the
// lossless end-to-end conservation law, loss tolerance, cross-scheme
// determinism, and the primed large-population path.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <tuple>
#include <vector>

#include "src/concurrent/sharded_wheel.h"
#include "src/core/timer_facility.h"
#include "src/net/timer_server.h"
#include "src/net/timer_workload.h"

namespace twheel::net {
namespace {

FacilityConfig HostScheme(SchemeId id) {
  FacilityConfig config;
  config.scheme = id;
  config.wheel_size = 256;
  config.level_sizes = {16, 16, 16};
  return config;
}

// TimerServer + a deterministic callback channel (lossless, one-tick delay),
// with the host and network clocks stepped in lockstep.
struct ServerRig {
  explicit ServerRig(SchemeId scheme = SchemeId::kScheme6HashedUnsorted)
      : network(std::make_unique<sim::Simulator>(
            MakeTimerService(HostScheme(SchemeId::kScheme3Heap)))),
        downlink(*network, /*seed=*/1,
                 ChannelConfig{.loss_probability = 0.0, .delay_lo = 1,
                               .delay_hi = 1}),
        server(MakeTimerService(HostScheme(scheme)), downlink) {
    downlink.set_receiver(
        [this](const Packet& p) { callbacks.push_back(p); });
  }

  void Tick(int n = 1) {
    for (int i = 0; i < n; ++i) {
      server.Tick();
      network->Step();
    }
  }

  static Packet Request(PacketType type, std::uint32_t session,
                        std::uint64_t timer, std::uint64_t arg0 = 0,
                        std::uint64_t arg1 = 0) {
    Packet p;
    p.connection_id = session;
    p.seq = timer;
    p.type = type;
    p.arg0 = arg0;
    p.arg1 = arg1;
    return p;
  }

  std::unique_ptr<sim::Simulator> network;
  Channel downlink;
  TimerServer server;
  std::vector<Packet> callbacks;
};

TEST(TimerServerTest, OneShotSetFiresOneCallback) {
  ServerRig rig;
  rig.server.OnRequest(
      ServerRig::Request(PacketType::kTimerSet, 3, 1, /*interval=*/5));
  EXPECT_EQ(rig.server.registrations(), 1u);
  rig.Tick(5);
  ASSERT_EQ(rig.callbacks.size(), 1u);
  EXPECT_EQ(rig.callbacks[0].type, PacketType::kTimerFire);
  EXPECT_EQ(rig.callbacks[0].connection_id, 3u);
  EXPECT_EQ(rig.callbacks[0].seq, 1u);
  EXPECT_EQ(rig.callbacks[0].arg0, 5u);  // host tick at dispatch
  EXPECT_EQ(rig.server.registrations(), 0u);
  EXPECT_EQ(rig.server.host().outstanding(), 0u);
  rig.Tick(20);
  EXPECT_EQ(rig.callbacks.size(), 1u);
}

TEST(TimerServerTest, PeriodicSetDeliversExactlyItsBudgetOfLaps) {
  ServerRig rig;
  rig.server.OnRequest(ServerRig::Request(PacketType::kTimerSetPeriodic, 2, 0,
                                          /*interval=*/4, /*repeat_for=*/3));
  rig.Tick(30);
  ASSERT_EQ(rig.callbacks.size(), 3u);
  EXPECT_EQ(rig.callbacks[0].arg0, 4u);
  EXPECT_EQ(rig.callbacks[1].arg0, 8u);   // phase-stable laps
  EXPECT_EQ(rig.callbacks[2].arg0, 12u);
  EXPECT_EQ(rig.server.registrations(), 0u);
  EXPECT_EQ(rig.server.stats().periodic_laps, 2u);  // final lap closes it
  EXPECT_EQ(rig.server.stats().fires_sent, 3u);
}

TEST(TimerServerTest, CancelSuppressesTheCallback) {
  ServerRig rig;
  rig.server.OnRequest(
      ServerRig::Request(PacketType::kTimerSet, 1, 0, /*interval=*/10));
  rig.Tick(3);
  rig.server.OnRequest(ServerRig::Request(PacketType::kTimerCancel, 1, 0));
  EXPECT_EQ(rig.server.stats().cancels, 1u);
  EXPECT_EQ(rig.server.registrations(), 0u);
  rig.Tick(30);
  EXPECT_TRUE(rig.callbacks.empty());
}

TEST(TimerServerTest, CancelBetweenPeriodicLapsStopsTheSeries) {
  ServerRig rig;
  rig.server.OnRequest(ServerRig::Request(PacketType::kTimerSetPeriodic, 5, 2,
                                          /*interval=*/6, /*repeat_for=*/5));
  rig.Tick(14);  // laps at 6 and 12 happened
  EXPECT_EQ(rig.callbacks.size(), 2u);
  rig.server.OnRequest(ServerRig::Request(PacketType::kTimerCancel, 5, 2));
  EXPECT_EQ(rig.server.stats().cancels, 1u);
  rig.Tick(40);
  EXPECT_EQ(rig.callbacks.size(), 2u);  // strict prefix of the budget
  EXPECT_EQ(rig.server.host().outstanding(), 0u);
}

TEST(TimerServerTest, RestartMovesTheDeadline) {
  ServerRig rig;
  rig.server.OnRequest(
      ServerRig::Request(PacketType::kTimerSet, 4, 0, /*interval=*/50));
  rig.Tick(10);
  rig.server.OnRequest(
      ServerRig::Request(PacketType::kTimerRestart, 4, 0, /*new interval=*/5));
  EXPECT_EQ(rig.server.stats().restarts, 1u);
  rig.Tick(5);
  ASSERT_EQ(rig.callbacks.size(), 1u);
  EXPECT_EQ(rig.callbacks[0].arg0, 15u);  // 10 + 5, not 50
}

TEST(TimerServerTest, RestartOfPeriodicMovesOnlyTheNextLap) {
  ServerRig rig;
  rig.server.OnRequest(ServerRig::Request(PacketType::kTimerSetPeriodic, 6, 0,
                                          /*interval=*/6, /*repeat_for=*/2));
  rig.Tick(8);  // first lap at 6
  ASSERT_EQ(rig.callbacks.size(), 1u);
  rig.server.OnRequest(
      ServerRig::Request(PacketType::kTimerRestart, 6, 0, /*new interval=*/2));
  rig.Tick(2);  // final lap lands at 10, not the natural 12
  ASSERT_EQ(rig.callbacks.size(), 2u);
  EXPECT_EQ(rig.callbacks[1].arg0, 10u);
  EXPECT_EQ(rig.server.registrations(), 0u);
}

TEST(TimerServerTest, DuplicateSetReplacesTheLiveTimer) {
  ServerRig rig;
  rig.server.OnRequest(
      ServerRig::Request(PacketType::kTimerSet, 9, 3, /*interval=*/50));
  rig.server.OnRequest(
      ServerRig::Request(PacketType::kTimerSet, 9, 3, /*interval=*/3));
  EXPECT_EQ(rig.server.stats().replaced, 1u);
  EXPECT_EQ(rig.server.registrations(), 1u);
  rig.Tick(60);
  ASSERT_EQ(rig.callbacks.size(), 1u);  // the old deadline never fires
  EXPECT_EQ(rig.callbacks[0].arg0, 3u);
}

TEST(TimerServerTest, StaleRequestsAreCountedNotFatal) {
  ServerRig rig;
  rig.server.OnRequest(ServerRig::Request(PacketType::kTimerCancel, 8, 0));
  rig.server.OnRequest(
      ServerRig::Request(PacketType::kTimerRestart, 8, 0, /*interval=*/4));
  EXPECT_EQ(rig.server.stats().cancel_misses, 1u);
  EXPECT_EQ(rig.server.stats().restart_misses, 1u);
  EXPECT_EQ(rig.server.registrations(), 0u);
}

TimerServerHarnessConfig HarnessConfig(SchemeId scheme, double loss) {
  TimerServerHarnessConfig config;
  config.seed = 42;
  config.host_scheme = HostScheme(scheme);
  config.channel.loss_probability = loss;
  config.channel.delay_lo = 2;
  config.channel.delay_hi = 8;
  config.workload.num_sessions = 400;
  config.workload.requests_per_tick = 16;
  config.workload.timers_per_session = 3;
  config.workload.min_interval = 4;
  config.workload.max_interval = 60;
  config.workload.periodic_probability = 0.4;
  config.workload.periodic_repeat_max = 6;
  config.workload.seed = 99;
  return config;
}

TEST(TimerServerHarnessTest, LosslessRunConservesEveryRegistration) {
  TimerServerHarness harness(
      HarnessConfig(SchemeId::kScheme6HashedUnsorted, /*loss=*/0.0));
  harness.Run(600);
  const Tick drained = harness.Drain(5000);
  ASSERT_LT(drained, 5000u) << "server failed to quiesce";
  EXPECT_EQ(harness.server().registrations(), 0u);
  EXPECT_EQ(harness.server().host().outstanding(), 0u);

  const TimerServerStats& s = harness.server().stats();
  EXPECT_GT(s.sets, 0u);
  EXPECT_GT(s.periodic_sets, 0u);
  EXPECT_GT(s.periodic_laps, 0u);
  EXPECT_GT(s.restarts, 0u);
  EXPECT_GT(s.cancels, 0u);
  EXPECT_EQ(s.rejected, 0u);
  // Lossless, fully drained: every accepted registration resolved exactly one
  // way — cancelled, replaced, or expired on its final fire.
  const std::uint64_t final_fires = s.fires_sent - s.periodic_laps;
  EXPECT_EQ(s.sets + s.periodic_sets, s.cancels + s.replaced + final_fires);
  // Every callback the server sent reached the client.
  EXPECT_EQ(harness.workload().stats().callbacks, s.fires_sent);
  EXPECT_EQ(harness.downlink().dropped(), 0u);
  EXPECT_EQ(harness.workload().believed_live(), 0u);
}

TEST(TimerServerHarnessTest, LossyRunQuiescesAndCountsStaleTraffic) {
  TimerServerHarness harness(
      HarnessConfig(SchemeId::kScheme6HashedUnsorted, /*loss=*/0.2));
  harness.Run(600);
  const Tick drained = harness.Drain(5000);
  ASSERT_LT(drained, 5000u) << "server failed to quiesce";
  EXPECT_EQ(harness.server().registrations(), 0u);
  EXPECT_EQ(harness.server().host().outstanding(), 0u);

  const TimerServerStats& s = harness.server().stats();
  // Lost sets and lost callbacks turn later traffic stale; the server absorbs
  // it as counted misses.
  EXPECT_GT(s.restart_misses + s.cancel_misses, 0u);
  // Callbacks delivered = callbacks sent minus the channel's losses.
  EXPECT_EQ(harness.workload().stats().callbacks,
            s.fires_sent - harness.downlink().dropped());
}

TEST(TimerServerHarnessTest, TrajectoryIsIdenticalAcrossHostSchemes) {
  // Packet fates are identity-hashed and the set of cookies firing on a tick
  // is scheme-independent, so the entire run — every request, loss, callback,
  // and stale miss — must be byte-identical no matter which scheme serves the
  // timers. This is the property that makes cross-scheme server benchmarks
  // comparable.
  auto run = [](SchemeId scheme) {
    TimerServerHarness harness(HarnessConfig(scheme, /*loss=*/0.1));
    harness.Run(400);
    const TimerServerStats& s = harness.server().stats();
    const TimerWorkloadStats& w = harness.workload().stats();
    return std::make_tuple(s.sets, s.periodic_sets, s.replaced, s.restarts,
                           s.restart_misses, s.cancels, s.cancel_misses,
                           s.fires_sent, s.periodic_laps, w.callbacks,
                           harness.uplink().dropped(),
                           harness.downlink().dropped(),
                           harness.server().registrations());
  };
  const auto baseline = run(SchemeId::kScheme2SortedFront);
  EXPECT_EQ(run(SchemeId::kScheme6HashedUnsorted), baseline);
  EXPECT_EQ(run(SchemeId::kScheme7Hierarchical), baseline);
  EXPECT_EQ(run(SchemeId::kScheme3Heap), baseline);
}

TEST(TimerServerHarnessTest, PrimedPopulationScalesPastTheBatchCursor) {
  // Prime() establishes every session in one pass — the path the
  // millions-of-sessions bench uses. 100k sessions here keeps CI fast; the
  // structure (one registration per session, no in-flight storm) is the same.
  TimerServerHarnessConfig config =
      HarnessConfig(SchemeId::kScheme6HashedUnsorted, /*loss=*/0.0);
  config.workload.num_sessions = 100000;
  config.workload.requests_per_tick = 0;  // only the primed registrations
  TimerServerHarness harness(config);
  harness.Prime();
  EXPECT_EQ(harness.server().registrations(), 100000u);
  EXPECT_EQ(harness.server().host().outstanding(), 100000u);
  const Tick drained = harness.Drain(3000);
  ASSERT_LT(drained, 3000u) << "primed population failed to drain";
  EXPECT_EQ(harness.server().registrations(), 0u);
  EXPECT_EQ(harness.workload().stats().callbacks,
            harness.server().stats().fires_sent);
  EXPECT_EQ(harness.workload().believed_live(), 0u);
}

// --- Concurrent dispatch: the server on a DispatchPool ----------------------

std::unique_ptr<TimerService> ShardedHost() {
  concurrent::SubmitOptions submit;
  submit.ring_capacity = 8192;
  submit.registration_capacity = 8192;
  submit.on_full = concurrent::SubmitPolicy::kReject;
  return std::make_unique<concurrent::ShardedWheel>(4, 64, submit);
}

TEST(TimerServerPoolTest, PoolRefusedForNonShardedHost) {
  ServerRig rig;  // scheme6 host: a plain single-threaded wheel
  concurrent::DispatchOptions options;
  options.drainers = 2;
  EXPECT_FALSE(rig.server.StartDispatchPool(options));
  EXPECT_FALSE(rig.server.pool_attached());
}

TEST(TimerServerPoolTest, ManualPoolPreservesProtocolSemantics) {
  // Same rig, but the host clock is a 2-drainer manual-mode pool: Tick()
  // routes through DispatchPool::AdvanceTo, so every callback was dispatched
  // by a drainer thread. Protocol results must be identical to the
  // single-threaded path.
  sim::Simulator network(
      MakeTimerService(HostScheme(SchemeId::kScheme3Heap)));
  Channel downlink(network, /*seed=*/1,
                   ChannelConfig{.loss_probability = 0.0, .delay_lo = 1,
                                 .delay_hi = 1});
  TimerServer server(ShardedHost(), downlink);
  std::vector<Packet> callbacks;
  downlink.set_receiver([&](const Packet& p) { callbacks.push_back(p); });

  concurrent::DispatchOptions options;
  options.drainers = 2;
  ASSERT_TRUE(server.StartDispatchPool(options));
  EXPECT_FALSE(server.StartDispatchPool(options)) << "double attach";

  // Sessions spread across stripes: set, periodic, cancel, restart.
  server.OnRequest(ServerRig::Request(PacketType::kTimerSet, 1, 0, 5));
  server.OnRequest(ServerRig::Request(PacketType::kTimerSetPeriodic, 2, 0,
                                      /*interval=*/4, /*repeat_for=*/3));
  server.OnRequest(ServerRig::Request(PacketType::kTimerSet, 3, 0, 30));
  server.OnRequest(ServerRig::Request(PacketType::kTimerCancel, 3, 0));
  for (int i = 0; i < 20; ++i) {
    server.Tick();
    network.Step();
  }
  // Session 1 fired once at 5; session 2 lapped at 4, 8, 12; session 3 was
  // cancelled. AdvanceTo's barrier sequences drainer sends before Step().
  ASSERT_EQ(callbacks.size(), 4u);
  EXPECT_EQ(server.stats().fires_sent, 4u);
  EXPECT_EQ(server.stats().cancels, 1u);
  EXPECT_EQ(server.registrations(), 0u);
  EXPECT_EQ(server.host().outstanding(), 0u);
  server.StopDispatchPool();
  EXPECT_FALSE(server.pool_attached());
  // Detached: Tick() drives the host directly again.
  server.OnRequest(ServerRig::Request(PacketType::kTimerSet, 4, 0, 2));
  for (int i = 0; i < 4; ++i) {
    server.Tick();
    network.Step();
  }
  EXPECT_EQ(callbacks.size(), 5u);
}

TEST(TimerServerPoolTest, TickerPoolDeliversWithoutExternalTicks) {
  // Ticker-mode pool: the drainers are the clock. The main thread must not
  // touch the simulator while drainers may call Channel::Send (the send mutex
  // serializes senders, not Send vs Step), so callbacks are flushed after
  // Stop. fires_sent counts what the drainers handed to the channel.
  sim::Simulator network(
      MakeTimerService(HostScheme(SchemeId::kScheme3Heap)));
  Channel downlink(network, /*seed=*/1,
                   ChannelConfig{.loss_probability = 0.0, .delay_lo = 1,
                                 .delay_hi = 1});
  TimerServer server(ShardedHost(), downlink);
  std::vector<Packet> callbacks;
  downlink.set_receiver([&](const Packet& p) { callbacks.push_back(p); });

  concurrent::DispatchOptions options;
  options.drainers = 4;
  options.tick_period = std::chrono::microseconds(50);
  ASSERT_TRUE(server.StartDispatchPool(options));
  constexpr std::uint32_t kSessions = 24;
  for (std::uint32_t s = 0; s < kSessions; ++s) {
    server.OnRequest(
        ServerRig::Request(PacketType::kTimerSet, s, 0, 1 + (s % 8)));
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.stats().fires_sent < kSessions &&
         std::chrono::steady_clock::now() < deadline) {
    server.Tick();  // no-op under a ticker pool; must not disturb the clock
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.StopDispatchPool();
  EXPECT_EQ(server.stats().fires_sent, kSessions);
  EXPECT_EQ(server.registrations(), 0u);
  // Flush the channel now that no drainer can touch it.
  for (int i = 0; i < 4; ++i) {
    network.Step();
  }
  EXPECT_EQ(callbacks.size(), kSessions);
}

}  // namespace
}  // namespace twheel::net
