// Retransmission-timer dynamics: with a fully lossy channel, the send instants of
// a single connection expose the exponential backoff schedule directly.

#include <gtest/gtest.h>

#include <vector>

#include "src/net/server.h"

namespace twheel::net {
namespace {

TEST(BackoffTest, RetransmissionGapsDoubleUpToCap) {
  ServerConfig config;
  config.num_connections = 1;
  config.seed = 51;
  config.channel.loss_probability = 1.0;  // nothing ever arrives
  config.channel.delay_lo = 1;
  config.channel.delay_hi = 1;
  config.connection.rto_initial = 32;
  config.connection.rto_max = 256;
  config.connection.keepalive_interval = 100000;  // out of the way
  config.connection.death_interval = 1000000;
  config.host_scheme.scheme = SchemeId::kScheme6HashedUnsorted;
  config.host_scheme.wheel_size = 1 << 21;  // covers the death interval

  Server server(config);
  // Sample the uplink send counter each tick; a bump marks a (re)transmission.
  std::vector<Tick> send_ticks;
  std::uint64_t last_sent = server.uplink().sent();
  if (last_sent > 0) {
    send_ticks.push_back(0);  // the initial send happens in the constructor
  }
  for (Tick t = 1; t <= 32 + 64 + 128 + 256 * 3 + 8; ++t) {
    server.Step();
    if (server.uplink().sent() > last_sent) {
      send_ticks.push_back(t);
      last_sent = server.uplink().sent();
    }
  }

  // Initial send at 0, then gaps 32 (rto doubles after each miss), 64, 128, 256,
  // 256 (capped), ...
  ASSERT_GE(send_ticks.size(), 6u);
  EXPECT_EQ(send_ticks[0], 0u);
  EXPECT_EQ(send_ticks[1] - send_ticks[0], 32u);
  EXPECT_EQ(send_ticks[2] - send_ticks[1], 64u);
  EXPECT_EQ(send_ticks[3] - send_ticks[2], 128u);
  EXPECT_EQ(send_ticks[4] - send_ticks[3], 256u);
  EXPECT_EQ(send_ticks[5] - send_ticks[4], 256u) << "backoff must cap at rto_max";
}

TEST(BackoffTest, RtoResetsAfterSuccessfulAck) {
  ServerConfig config;
  config.num_connections = 1;
  config.seed = 52;
  config.channel.loss_probability = 0.0;
  config.channel.delay_lo = 2;
  config.channel.delay_hi = 2;
  config.connection.rto_initial = 32;
  config.connection.rto_max = 256;
  config.connection.think_time = 5;
  config.connection.keepalive_interval = 100000;
  config.connection.death_interval = 1000000;
  config.host_scheme.scheme = SchemeId::kScheme6HashedUnsorted;
  config.host_scheme.wheel_size = 1 << 21;

  Server server(config);
  server.Run(2000);
  auto stats = server.TotalStats();
  // Lossless round trip stays far below rto 32: no retransmissions ever, and the
  // segment cadence settles at rtt + think (~8 ticks given the lockstep phasing of
  // the host and network simulators).
  EXPECT_EQ(stats.retransmissions, 0u);
  EXPECT_NEAR(static_cast<double>(stats.data_sent), 2000.0 / 8.0, 15.0);
}

}  // namespace
}  // namespace twheel::net
