// Channel-level tests: packet-identity hashing (order insensitivity), loss-rate
// statistics, and delay bounds.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/core/timer_facility.h"
#include "src/net/channel.h"

namespace twheel::net {
namespace {

std::unique_ptr<sim::Simulator> MakeNetSim() {
  FacilityConfig config;
  config.scheme = SchemeId::kScheme3Heap;
  return std::make_unique<sim::Simulator>(MakeTimerService(config));
}

TEST(ChannelTest, DeliversWithinConfiguredDelayWindow) {
  auto network = MakeNetSim();
  ChannelConfig config;
  config.loss_probability = 0.0;
  config.delay_lo = 3;
  config.delay_hi = 9;
  Channel channel(*network, 1, config);
  std::vector<Tick> deliveries;
  channel.set_receiver([&](const Packet&) { deliveries.push_back(network->now()); });

  for (std::uint64_t seq = 0; seq < 500; ++seq) {
    channel.Send(Packet{0, seq, PacketType::kData});
  }
  network->RunUntilIdle();
  ASSERT_EQ(deliveries.size(), 500u);
  for (Tick t : deliveries) {
    EXPECT_GE(t, 3u);
    EXPECT_LE(t, 9u);
  }
  EXPECT_EQ(channel.dropped(), 0u);
  EXPECT_EQ(channel.delivered(), 500u);
}

TEST(ChannelTest, LossRateMatchesConfiguration) {
  auto network = MakeNetSim();
  ChannelConfig config;
  config.loss_probability = 0.25;
  Channel channel(*network, 2, config);
  channel.set_receiver([](const Packet&) {});
  constexpr std::uint64_t kPackets = 40000;
  for (std::uint64_t seq = 0; seq < kPackets; ++seq) {
    channel.Send(Packet{static_cast<std::uint32_t>(seq % 64), seq, PacketType::kData});
    network->Step();
  }
  network->RunUntilIdle();
  double loss = static_cast<double>(channel.dropped()) / kPackets;
  EXPECT_NEAR(loss, 0.25, 0.01);
}

TEST(ChannelTest, PacketFateIsIdentityDetermined) {
  // The same packet sent at the same tick meets the same fate regardless of what
  // else happened first — the property that makes cross-scheme runs comparable.
  auto run = [](bool send_noise_first) {
    auto network = MakeNetSim();
    ChannelConfig config;
    config.loss_probability = 0.5;
    Channel channel(*network, 3, config);
    std::vector<std::uint64_t> delivered;
    channel.set_receiver([&](const Packet& p) { delivered.push_back(p.seq); });
    if (send_noise_first) {
      for (std::uint64_t seq = 1000; seq < 1050; ++seq) {
        channel.Send(Packet{9, seq, PacketType::kAck});
      }
    }
    for (std::uint64_t seq = 0; seq < 200; ++seq) {
      channel.Send(Packet{1, seq, PacketType::kData});
    }
    network->RunUntilIdle();
    std::vector<bool> fate(200, false);
    for (std::uint64_t seq : delivered) {
      if (seq < 200) {
        fate[seq] = true;
      }
    }
    return fate;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(ChannelTest, RetransmissionsGetIndependentFates) {
  // The same (conn, seq, type) sent at different ticks hashes differently: a lost
  // first attempt does not doom the retry.
  auto network = MakeNetSim();
  ChannelConfig config;
  config.loss_probability = 0.5;
  Channel channel(*network, 4, config);
  channel.set_receiver([](const Packet&) {});
  std::uint64_t flips = 0;
  bool last = false;
  for (Tick t = 0; t < 2000; ++t) {
    std::uint64_t before = channel.dropped();
    channel.Send(Packet{1, 42, PacketType::kData});  // identical packet each tick
    bool dropped_now = channel.dropped() > before;
    if (t > 0 && dropped_now != last) {
      ++flips;
    }
    last = dropped_now;
    network->Step();
  }
  // With independent 50/50 fates, ~1000 flips; identical fates would give 0.
  EXPECT_GT(flips, 800u);
}

TEST(ChannelTest, HighSequenceNumbersDoNotAliasConnectionFates) {
  // Regression for the fingerprint packing bug. The old fingerprint packed
  // fields by shift-and-xor — `connection_id << 48` over `seq << 16` — so
  // seq bits [32, 48) landed exactly on the connection bits: packet
  // {conn, (hi << 32) | low} and packet {conn ^ hi, low} produced the SAME
  // fingerprint when sent at the same tick, and every long-lived flow past
  // seq 2^32 shared loss/delay fates with some other connection. The mixed
  // fingerprint must give such constructed pairs independent fates.
  auto network = MakeNetSim();
  ChannelConfig config;
  config.loss_probability = 0.5;
  Channel channel(*network, 5, config);
  channel.set_receiver([](const Packet&) {});

  constexpr std::uint32_t kConn = 7;
  constexpr int kPairs = 1000;
  int divergent = 0;
  for (int i = 0; i < kPairs; ++i) {
    // Both packets of a pair go out on the same tick, like the old collision.
    const std::uint64_t hi = static_cast<std::uint64_t>(i + 1) & 0xFFFF;
    const std::uint64_t low = static_cast<std::uint64_t>(i);
    std::uint64_t before = channel.dropped();
    channel.Send(Packet{kConn, (hi << 32) | low, PacketType::kData});
    const bool first_dropped = channel.dropped() > before;
    before = channel.dropped();
    channel.Send(Packet{kConn ^ static_cast<std::uint32_t>(hi), low,
                        PacketType::kData});
    const bool second_dropped = channel.dropped() > before;
    divergent += first_dropped != second_dropped ? 1 : 0;
    network->Step();
  }
  // Independent 50/50 fates diverge on ~half the pairs; the aliasing
  // fingerprint gave exactly 0 divergent pairs.
  EXPECT_GT(divergent, kPairs / 3);
  network->RunUntilIdle();
}

TEST(ChannelTest, CounterSnapshotsAreRaceFreeUnderConcurrentReaders) {
  // Regression for the counter data race (ISSUE satellite): sent_/dropped_/
  // delivered_ used to be plain words, so a monitor thread snapshotting them
  // while the simulation thread transmitted was undefined behaviour — TSan
  // flagged it, and torn 32-bit halves were possible on some targets. The
  // counters are relaxed atomics now; this test recreates exactly that shape
  // (one sender driving Send/Step, two monitor threads hammering the
  // accessors) so a TSan build of the `cluster` suite re-proves it on every
  // run. The monitors also check the only cross-counter invariant relaxed
  // ordering still guarantees per observer: each counter is monotone.
  auto network = MakeNetSim();
  ChannelConfig config;
  config.loss_probability = 0.3;
  Channel channel(*network, 11, config);
  channel.set_receiver([](const Packet&) {});

  std::atomic<bool> done{false};
  std::atomic<bool> monotone{true};
  auto monitor = [&] {
    std::uint64_t last_sent = 0, last_dropped = 0, last_delivered = 0;
    while (!done.load(std::memory_order_acquire)) {
      const std::uint64_t sent = channel.sent();
      const std::uint64_t dropped = channel.dropped();
      const std::uint64_t delivered = channel.delivered();
      if (sent < last_sent || dropped < last_dropped ||
          delivered < last_delivered) {
        monotone.store(false, std::memory_order_relaxed);
      }
      last_sent = sent;
      last_dropped = dropped;
      last_delivered = delivered;
    }
  };
  std::thread reader_a(monitor);
  std::thread reader_b(monitor);
  for (std::uint64_t seq = 0; seq < 20000; ++seq) {
    channel.Send(Packet{1, seq, PacketType::kData});
    if ((seq & 7) == 0) {
      network->Step();
    }
  }
  network->RunUntilIdle();
  done.store(true, std::memory_order_release);
  reader_a.join();
  reader_b.join();

  EXPECT_TRUE(monotone.load()) << "a monitor observed a counter run backwards";
  EXPECT_EQ(channel.sent(), 20000u);
  EXPECT_EQ(channel.sent(), channel.dropped() + channel.delivered());
  EXPECT_GT(channel.dropped(), 0u);
  EXPECT_GT(channel.delivered(), 0u);
}

TEST(ChannelTest, DifferentSeedsDifferentFates) {
  auto run = [](std::uint64_t seed) {
    auto network = MakeNetSim();
    ChannelConfig config;
    config.loss_probability = 0.5;
    Channel channel(*network, seed, config);
    channel.set_receiver([](const Packet&) {});
    for (std::uint64_t seq = 0; seq < 256; ++seq) {
      channel.Send(Packet{1, seq, PacketType::kData});
    }
    return channel.dropped();
  };
  EXPECT_NE(run(1001), run(1002));
}

}  // namespace
}  // namespace twheel::net
