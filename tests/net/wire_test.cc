// Wire-decode robustness (ISSUE satellite): EncodePacket/DecodePacket
// roundtrip for every packet type in the registry — timer-server and cluster
// replication alike — and the strict-reject paths: every truncation, a
// trailing-garbage oversize, out-of-range type bytes, null buffers, and
// seeded random garbage. Run under ASan/UBSan this is the proof that a
// malformed buffer can never make the decode path read out of bounds; the
// TimerServer::OnWire case extends the same guarantee through the server's
// byte-transport entry point (counted in stats().decode_rejects).

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <vector>

#include "src/core/timer_facility.h"
#include "src/net/channel.h"
#include "src/net/timer_server.h"
#include "src/net/wire.h"
#include "src/rng/rng.h"
#include "src/sim/simulator.h"

namespace twheel::net {
namespace {

Packet MakePacket(PacketType type, std::uint64_t salt) {
  Packet p;
  p.connection_id = static_cast<std::uint32_t>(0xC0FFEE00u + salt);
  p.seq = 0x0123456789ABCDEFULL ^ (salt * 0x9E3779B97F4A7C15ULL);
  p.type = type;
  p.arg0 = ~salt;
  p.arg1 = salt << 17;
  return p;
}

TEST(WireTest, RoundtripsEveryPacketType) {
  for (std::uint8_t t = 0; t < kPacketTypeCount; ++t) {
    const Packet in = MakePacket(static_cast<PacketType>(t), t);
    const auto bytes = EncodePacket(in);
    const std::optional<Packet> out = DecodePacket(bytes.data(), bytes.size());
    ASSERT_TRUE(out.has_value()) << "type byte " << int{t};
    EXPECT_EQ(out->connection_id, in.connection_id);
    EXPECT_EQ(out->seq, in.seq);
    EXPECT_EQ(out->type, in.type);
    EXPECT_EQ(out->arg0, in.arg0);
    EXPECT_EQ(out->arg1, in.arg1);
  }
}

TEST(WireTest, EveryTruncationIsRejected) {
  const auto bytes = EncodePacket(MakePacket(PacketType::kClusterArm, 1));
  for (std::size_t size = 0; size < kWirePacketSize; ++size) {
    EXPECT_FALSE(DecodePacket(bytes.data(), size).has_value())
        << "accepted a " << size << "-byte prefix";
  }
}

TEST(WireTest, TrailingGarbageIsRejected) {
  // One well-formed packet followed by extra bytes is NOT one packet.
  const auto bytes = EncodePacket(MakePacket(PacketType::kTimerSet, 2));
  std::vector<std::uint8_t> padded(bytes.begin(), bytes.end());
  padded.push_back(0xAB);
  EXPECT_FALSE(DecodePacket(padded.data(), padded.size()).has_value());
  padded.resize(2 * kWirePacketSize, 0x55);
  EXPECT_FALSE(DecodePacket(padded.data(), padded.size()).has_value());
}

TEST(WireTest, OutOfRangeTypeBytesAreRejected) {
  auto bytes = EncodePacket(MakePacket(PacketType::kData, 3));
  for (unsigned t = kPacketTypeCount; t <= 0xFF; ++t) {
    bytes[12] = static_cast<std::uint8_t>(t);
    EXPECT_FALSE(DecodePacket(bytes.data(), bytes.size()).has_value())
        << "accepted type byte " << t;
  }
}

TEST(WireTest, NullBufferIsRejected) {
  EXPECT_FALSE(DecodePacket(nullptr, 0).has_value());
  EXPECT_FALSE(DecodePacket(nullptr, kWirePacketSize).has_value());
}

TEST(WireTest, SeededGarbageNeverTripsTheDecoder) {
  // 4096 random buffers at random sizes around the packet size: each either
  // decodes to an in-range packet (exact size, lucky type byte) or returns
  // nullopt. Under ASan/UBSan this doubles as an out-of-bounds probe: the
  // buffer is heap-sized exactly, so any stray read past `size` traps.
  rng::Xoshiro256 rng(0x817EDECull);
  std::uint64_t decoded = 0;
  for (int round = 0; round < 4096; ++round) {
    const std::size_t size = rng.NextBounded(kWirePacketSize + 4);
    std::vector<std::uint8_t> buffer(size);
    for (auto& byte : buffer) {
      byte = static_cast<std::uint8_t>(rng.Next());
    }
    const std::optional<Packet> out = DecodePacket(buffer.data(), size);
    if (out.has_value()) {
      ++decoded;
      ASSERT_EQ(size, kWirePacketSize);
      ASSERT_LT(static_cast<std::uint8_t>(out->type), kPacketTypeCount);
    }
  }
  // Exact-size buffers are 1 in (kWirePacketSize + 4) and the type byte
  // passes ~22/256 of the time; a handful of decodes is expected, thousands
  // would mean the strictness checks fell off.
  EXPECT_LT(decoded, 64u);
}

TEST(WireTest, ServerOnWireCountsRejectsAndStaysAlive) {
  FacilityConfig host_config;
  host_config.scheme = SchemeId::kScheme6HashedUnsorted;
  auto network = std::make_unique<sim::Simulator>(
      MakeTimerService([] {
        FacilityConfig c;
        c.scheme = SchemeId::kScheme3Heap;
        return c;
      }()));
  Channel downlink(*network, /*seed=*/1,
                   ChannelConfig{.loss_probability = 0.0, .delay_lo = 1,
                                 .delay_hi = 1});
  std::vector<Packet> callbacks;
  downlink.set_receiver([&callbacks](const Packet& p) {
    callbacks.push_back(p);
  });
  TimerServer server(MakeTimerService(host_config), downlink);

  // Garbage first: truncations, oversize, bad type byte.
  const auto good = EncodePacket([] {
    Packet p;
    p.connection_id = 9;
    p.seq = 1;
    p.type = PacketType::kTimerSet;
    p.arg0 = 3;  // interval
    return p;
  }());
  EXPECT_FALSE(server.OnWire(good.data(), kWirePacketSize - 1));
  EXPECT_FALSE(server.OnWire(nullptr, 0));
  std::vector<std::uint8_t> oversize(good.begin(), good.end());
  oversize.push_back(0);
  EXPECT_FALSE(server.OnWire(oversize.data(), oversize.size()));
  auto bad_type = good;
  bad_type[12] = kPacketTypeCount;
  EXPECT_FALSE(server.OnWire(bad_type.data(), bad_type.size()));
  EXPECT_EQ(server.stats().decode_rejects, 4u);
  EXPECT_EQ(server.stats().sets, 0u) << "a rejected buffer reached dispatch";

  // The same server still serves well-formed traffic afterwards.
  EXPECT_TRUE(server.OnWire(good.data(), good.size()));
  for (int t = 0; t < 6; ++t) {
    server.Tick();
    network->Step();
  }
  EXPECT_EQ(server.stats().sets, 1u);
  EXPECT_EQ(server.stats().fires_sent, 1u);
  ASSERT_EQ(callbacks.size(), 1u);
  EXPECT_EQ(callbacks[0].type, PacketType::kTimerFire);
  EXPECT_EQ(callbacks[0].seq, 1u);
}

}  // namespace
}  // namespace twheel::net
