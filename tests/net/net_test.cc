// The Section 1 motivating workload: a server with many connections and three
// timers each, over lossy channels. These tests pin the protocol mechanics and the
// claim structure (acks cancel most retransmission timers; losses expire them).

#include <gtest/gtest.h>

#include "src/net/server.h"

namespace twheel::net {
namespace {

ServerConfig BaseConfig() {
  ServerConfig config;
  config.num_connections = 20;
  config.seed = 41;
  config.channel.loss_probability = 0.0;
  config.channel.delay_lo = 2;
  config.channel.delay_hi = 6;
  config.connection.rto_initial = 40;
  config.connection.think_time = 10;
  config.connection.keepalive_interval = 500;
  config.connection.death_interval = 4000;
  config.host_scheme.scheme = SchemeId::kScheme6HashedUnsorted;
  config.host_scheme.wheel_size = 256;
  return config;
}

// Segments sent but not yet acked at shutdown (0 or 1 per connection).
std::size_t CountStillAwaiting(const Server& server) {
  std::size_t awaiting = 0;
  for (std::size_t i = 0; i < server.num_connections(); ++i) {
    // next_seq counts completed segments; data_sent counts initiated ones.
    awaiting += server.connection(i).stats().data_sent - server.connection(i).next_seq();
  }
  return awaiting;
}

TEST(NetTest, LosslessRunHasNoRetransmissions) {
  Server server(BaseConfig());
  server.Run(5000);
  auto stats = server.TotalStats();
  EXPECT_GT(stats.data_sent, 1000u);
  EXPECT_EQ(stats.retransmissions, 0u);
  EXPECT_EQ(stats.deaths, 0u);
  // One ack per data segment (no losses, stop-and-wait): every initiated segment is
  // acked except those still in flight at shutdown.
  EXPECT_EQ(stats.acks_received, stats.data_sent - CountStillAwaiting(server))
      << "every completed segment was acked";
}

TEST(NetTest, LossTriggersRetransmissionsNotDeaths) {
  auto config = BaseConfig();
  config.channel.loss_probability = 0.1;
  Server server(config);
  server.Run(20000);
  auto stats = server.TotalStats();
  EXPECT_GT(stats.retransmissions, 0u);
  // ~19% of round trips lose a packet; retransmissions should be in that ballpark
  // relative to data volume.
  double retx_rate = static_cast<double>(stats.retransmissions) /
                     static_cast<double>(stats.data_sent + stats.retransmissions);
  EXPECT_GT(retx_rate, 0.10);
  EXPECT_LT(retx_rate, 0.30);
  EXPECT_EQ(stats.deaths, 0u) << "death timer must not fire while acks still flow";
}

TEST(NetTest, TotalLossLeadsToDeathDetection) {
  auto config = BaseConfig();
  config.num_connections = 5;
  config.channel.loss_probability = 1.0;  // peer unreachable
  config.connection.death_interval = 2000;
  Server server(config);
  server.Run(4100);
  auto stats = server.TotalStats();
  EXPECT_GT(stats.retransmissions, 0u);
  // Each connection declares death every 2000 ticks of silence: 2 rounds in 4100.
  EXPECT_EQ(stats.deaths, 10u);
  EXPECT_EQ(stats.acks_received, 0u);
}

TEST(NetTest, IdleConnectionsSendKeepalives) {
  auto config = BaseConfig();
  config.num_connections = 3;
  // Make data flow stop after the first exchange by making think time enormous.
  config.connection.think_time = 100000;
  config.connection.keepalive_interval = 300;
  config.connection.death_interval = 50000;
  config.host_scheme.wheel_size = 1024;
  Server server(config);
  server.Run(3000);
  auto stats = server.TotalStats();
  // ~(3000 / 300) keepalives per connection after the initial exchange settles.
  EXPECT_GE(stats.keepalives_sent, 3u * 8u);
  EXPECT_EQ(stats.deaths, 0u) << "keepalive acks must feed the death timer";
}

TEST(NetTest, ThreeTimersPerConnectionOutstanding) {
  // The paper's sizing example: with think pauses between segments, each connection
  // holds keepalive + death (+ rto or think) timers at all times.
  auto config = BaseConfig();
  config.num_connections = 200;
  Server server(config);
  server.Run(1000);
  EXPECT_GE(server.host_outstanding(), 2u * 200u);
  EXPECT_LE(server.host_outstanding(), 3u * 200u);
}

TEST(NetTest, MostRetransmissionTimersAreStoppedNotExpired) {
  // "If failures are infrequent these timers rarely expire": with 2% loss, stops
  // dominate expiries in the host's op counts.
  auto config = BaseConfig();
  config.channel.loss_probability = 0.02;
  Server server(config);
  server.Run(20000);
  const auto& counts = server.host_counts();
  EXPECT_GT(counts.stop_calls, counts.expiries);
}

TEST(NetTest, DeterministicForSeed) {
  auto config = BaseConfig();
  config.channel.loss_probability = 0.1;
  Server a(config), b(config);
  a.Run(5000);
  b.Run(5000);
  auto sa = a.TotalStats(), sb = b.TotalStats();
  EXPECT_EQ(sa.data_sent, sb.data_sent);
  EXPECT_EQ(sa.retransmissions, sb.retransmissions);
  EXPECT_EQ(sa.acks_received, sb.acks_received);
  EXPECT_EQ(a.host_counts().start_calls, b.host_counts().start_calls);
}

TEST(NetTest, SchemesAgreeOnProtocolOutcome) {
  // The protocol outcome must not depend on which (exact) scheme serves the timers.
  auto config = BaseConfig();
  config.channel.loss_probability = 0.15;
  ConnectionStats reference;
  bool first = true;
  for (SchemeId id : {SchemeId::kScheme2SortedFront, SchemeId::kScheme3Heap,
                      SchemeId::kScheme6HashedUnsorted, SchemeId::kScheme7Hierarchical}) {
    config.host_scheme.scheme = id;
    config.host_scheme.level_sizes = {64, 64, 16};
    Server server(config);
    server.Run(10000);
    auto stats = server.TotalStats();
    if (first) {
      reference = stats;
      first = false;
    } else {
      EXPECT_EQ(stats.data_sent, reference.data_sent) << SchemeName(id);
      EXPECT_EQ(stats.retransmissions, reference.retransmissions) << SchemeName(id);
      EXPECT_EQ(stats.acks_received, reference.acks_received) << SchemeName(id);
    }
  }
}

}  // namespace
}  // namespace twheel::net
