// Layout regression pins for the hot/cold TimerRecord split (timer_record.h).
//
// The hot record's one-cache-line budget is enforced at compile time by the
// static_assert in timer_record.h; this suite pins the rest of the contract so
// a layout change is a deliberate, reviewed diff rather than silent drift:
// field offsets within the hot record, the union overlays that keep disjoint
// schemes from paying for each other, hot-slab cache-line alignment, and
// hot/cold slot agreement while the paired arena grows and recycles.
//
// TimerRecord derives from ListNode (which has members), so it is not a
// standard-layout type and offsetof on it is conditionally-supported; the
// offset pins below use pointer arithmetic on a live object instead.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/base/slab_arena.h"
#include "src/core/timer_record.h"

namespace twheel {
namespace {

static_assert(sizeof(TimerRecord) <= 64,
              "hot record must fit one 64-byte cache line");
static_assert(sizeof(TimerRecord) == 64,
              "hot record is exactly one line today; if a field was removed, "
              "reclaim the slack deliberately (or relax this pin)");
static_assert(alignof(TimerRecord) == 8, "hot record is pointer-aligned");
static_assert(sizeof(ListNode) == 16, "intrusive links: prev + next");

// The cold record is allowed to grow — that is the point of the split — but a
// *shrink* of the pair below the old fat record would be news worth noticing,
// and accidental growth past two lines deserves a look too.
static_assert(sizeof(ColdTimerRecord) <= 128,
              "cold record grew past two cache lines; was a hot field dumped "
              "here wholesale?");

template <typename Field>
std::size_t OffsetIn(const TimerRecord& rec, const Field& field) {
  return static_cast<std::size_t>(reinterpret_cast<const unsigned char*>(&field) -
                                  reinterpret_cast<const unsigned char*>(&rec));
}

TEST(LayoutTest, HotFieldOffsetsArePinned) {
  TimerRecord rec;
  // ListNode's prev/next occupy [0, 16); every hot field follows in declaration
  // order with no padding holes until the trailing byte fields.
  EXPECT_EQ(OffsetIn(rec, rec.expiry_tick), 16u);
  EXPECT_EQ(OffsetIn(rec, rec.self), 24u);
  EXPECT_EQ(OffsetIn(rec, rec.seq), 32u);
  EXPECT_EQ(OffsetIn(rec, rec.interval), 40u);
  EXPECT_EQ(OffsetIn(rec, rec.rounds), 48u);
  EXPECT_EQ(OffsetIn(rec, rec.home_slot), 56u);
  EXPECT_EQ(OffsetIn(rec, rec.level), 60u);
  EXPECT_EQ(OffsetIn(rec, rec.migrations_done), 61u);
  EXPECT_EQ(OffsetIn(rec, rec.cancelled), 62u);
}

TEST(LayoutTest, UnionsOverlayAsDocumented) {
  TimerRecord rec;
  // Scheme 1's per-tick decrement target overlays the hashed wheels' revolution
  // count; the heap's array index overlays the wheels' slot index.
  EXPECT_EQ(OffsetIn(rec, rec.rounds), OffsetIn(rec, rec.remaining));
  EXPECT_EQ(OffsetIn(rec, rec.home_slot), OffsetIn(rec, rec.heap_index));
  rec.rounds = 0x0123456789abcdefull;
  EXPECT_EQ(rec.remaining, 0x0123456789abcdefull);
  rec.heap_index = 7;
  EXPECT_EQ(rec.home_slot, 7u);
}

TEST(LayoutTest, FreshRecordDefaultsMatchSchemeExpectations) {
  TimerRecord rec;
  EXPECT_EQ(rec.rounds, 0u);
  EXPECT_EQ(rec.home_slot, TimerRecord::kNoIndex);
  EXPECT_EQ(rec.level, 0u);
  EXPECT_FALSE(rec.cancelled);
  ColdTimerRecord cold;
  EXPECT_EQ(cold.hot, nullptr);
  EXPECT_EQ(cold.period, 0u);
  EXPECT_EQ(cold.repeats_left, 0u);
  EXPECT_EQ(cold.left, nullptr);
  EXPECT_EQ(cold.right, nullptr);
  EXPECT_EQ(cold.parent, nullptr);
}

TEST(LayoutTest, HotSlabIsCacheLineAligned) {
  // sizeof(TimerRecord) == 64 and chunks are 64-aligned, so EVERY hot record
  // starts on its own cache line — a bucket walk pulls one line per resident.
  PairedSlabArena<TimerRecord, ColdTimerRecord> arena;
  for (int i = 0; i < 5000; ++i) {
    auto [hot, ref] = arena.Allocate();
    ASSERT_NE(hot, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(hot) % 64, 0u)
        << "record " << i << " straddles a cache line";
  }
}

TEST(LayoutTest, HotColdSlotsAgreeAcrossArenaGrowth) {
  PairedSlabArena<TimerRecord, ColdTimerRecord> arena;
  struct Pair {
    TimerRecord* hot;
    ColdTimerRecord* cold;
    SlabRef ref;
  };
  std::vector<Pair> pairs;
  // Span several chunks (chunk size is 1024 slots) so growth reallocates the
  // chunk index vectors while earlier pairs are live.
  for (std::uint32_t i = 0; i < 5000; ++i) {
    auto [hot, ref] = arena.Allocate();
    ASSERT_NE(hot, nullptr);
    ColdTimerRecord* cold = arena.ColdOf(ref.slot);
    cold->hot = hot;
    cold->request_id = i;
    hot->seq = i;
    pairs.push_back({hot, cold, ref});
  }
  // Addresses are stable and the parallel slabs still agree slot-for-slot.
  for (const Pair& p : pairs) {
    EXPECT_EQ(arena.Get(p.ref), p.hot);
    EXPECT_EQ(arena.ColdOf(p.ref.slot), p.cold);
    EXPECT_EQ(p.cold->hot, p.hot);
    EXPECT_EQ(p.cold->request_id, p.hot->seq);
  }
  EXPECT_EQ(arena.live(), pairs.size());
  EXPECT_EQ(arena.hot_slab_bytes(), 5u * 1024u * sizeof(TimerRecord));
  EXPECT_EQ(arena.cold_slab_bytes(), 5u * 1024u * sizeof(ColdTimerRecord));
}

TEST(LayoutTest, FreeingInvalidatesBothHalvesAndRecyclesTheSlot) {
  PairedSlabArena<TimerRecord, ColdTimerRecord> arena;
  auto [hot, ref] = arena.Allocate();
  arena.ColdOf(ref.slot)->period = 99;
  hot->expiry_tick = 42;
  arena.Free(ref);
  EXPECT_EQ(arena.Get(ref), nullptr) << "stale ref must miss";
  EXPECT_EQ(arena.live(), 0u);

  // The recycled slot hands out a higher generation and FRESH records on both
  // sides — the old timer's cadence cannot resurrect.
  auto [hot2, ref2] = arena.Allocate();
  EXPECT_EQ(ref2.slot, ref.slot);
  EXPECT_NE(ref2.generation, ref.generation);
  EXPECT_EQ(hot2->expiry_tick, 0u);
  EXPECT_EQ(arena.ColdOf(ref2.slot)->period, 0u);
  EXPECT_EQ(arena.Get(ref), nullptr);
  EXPECT_EQ(arena.Get(ref2), hot2);
}

}  // namespace
}  // namespace twheel
