// Tests for the factory facade: construction, naming, and configuration routing.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/core/basic_wheel.h"
#include "src/core/hierarchical_wheel.h"
#include "src/core/timer_facility.h"

namespace twheel {
namespace {

TEST(TimerFacilityTest, EveryIdConstructsAndNamesAgree) {
  std::set<std::string> names;
  for (SchemeId id : kAllSchemes) {
    FacilityConfig config;
    config.scheme = id;
    auto service = MakeTimerService(config);
    ASSERT_NE(service, nullptr);
    EXPECT_EQ(service->name(), SchemeName(id));
    names.insert(std::string(service->name()));
  }
  EXPECT_EQ(names.size(), std::size(kAllSchemes)) << "names must be unique";
}

TEST(TimerFacilityTest, WheelSizeRouted) {
  FacilityConfig config;
  config.scheme = SchemeId::kScheme4BasicWheel;
  config.wheel_size = 128;
  auto service = MakeTimerService(config);
  EXPECT_TRUE(service->StartTimer(127, 1).has_value());
  auto over = service->StartTimer(128, 2);
  ASSERT_FALSE(over.has_value());
  EXPECT_EQ(over.error(), TimerError::kIntervalOutOfRange);
}

TEST(TimerFacilityTest, OverflowPolicyRouted) {
  FacilityConfig config;
  config.scheme = SchemeId::kScheme4BasicWheel;
  config.wheel_size = 128;
  config.overflow = OverflowPolicy::kClamp;
  auto service = MakeTimerService(config);
  EXPECT_TRUE(service->StartTimer(100000, 1).has_value());  // clamped, not rejected
}

TEST(TimerFacilityTest, LevelSizesRouted) {
  FacilityConfig config;
  config.scheme = SchemeId::kScheme7Hierarchical;
  config.level_sizes = {8, 8};
  auto service = MakeTimerService(config);
  // Span 64, top granularity 8 -> max interval 56.
  EXPECT_TRUE(service->StartTimer(56, 1).has_value());
  EXPECT_FALSE(service->StartTimer(57, 2).has_value());
}

TEST(TimerFacilityTest, MigrationPolicyRouted) {
  FacilityConfig config;
  config.scheme = SchemeId::kScheme7Hierarchical;
  config.level_sizes = {16, 16};
  config.migration = MigrationPolicy::kNone;
  auto service = MakeTimerService(config);
  std::vector<Tick> fired;
  service->set_expiry_handler([&](RequestId, Tick when) { fired.push_back(when); });
  // 100 ticks from an unaligned now: no-migration mode rounds to the minute level.
  service->AdvanceBy(3);
  ASSERT_TRUE(service->StartTimer(100, 1).has_value());
  service->AdvanceBy(200);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(service->counts().migrations, 0u);
  EXPECT_NE(fired[0], 103u) << "rounding should have moved the fire tick off-exact";
}

TEST(TimerFacilityTest, MaxTimersRoutedToEveryScheme) {
  for (SchemeId id : kAllSchemes) {
    FacilityConfig config;
    config.scheme = id;
    config.max_timers = 2;
    auto service = MakeTimerService(config);
    ASSERT_TRUE(service->StartTimer(10, 1).has_value()) << SchemeName(id);
    ASSERT_TRUE(service->StartTimer(10, 2).has_value()) << SchemeName(id);
    auto third = service->StartTimer(10, 3);
    ASSERT_FALSE(third.has_value()) << SchemeName(id);
    EXPECT_EQ(third.error(), TimerError::kNoCapacity) << SchemeName(id);
  }
}

TEST(TimerFacilityTest, SchemeNamesAreKebabStable) {
  EXPECT_STREQ(SchemeName(SchemeId::kScheme1Unordered), "scheme1-unordered");
  EXPECT_STREQ(SchemeName(SchemeId::kScheme6HashedUnsorted), "scheme6-hashed-unsorted");
  EXPECT_STREQ(SchemeName(SchemeId::kScheme7Hierarchical), "scheme7-hierarchical");
}

}  // namespace
}  // namespace twheel
