// Scheme 7 (Section 6.2): hierarchy construction, the exact Figure 10 -> Figure 11
// worked example, migration accounting, range limits, and the Wick Nichols
// precision-trading variants.

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "src/core/hierarchical_wheel.h"

namespace twheel {
namespace {

// The paper's second/minute/hour/day geometry: 60 + 60 + 24 + 100 = 244 slots
// instead of 8.64 million.
constexpr std::array<std::size_t, 4> kPaperLevels = {60, 60, 24, 100};

TEST(HierarchicalWheelTest, PaperGeometryProperties) {
  HierarchicalWheel wheel(kPaperLevels);
  EXPECT_EQ(wheel.num_levels(), 4u);
  EXPECT_EQ(wheel.granularity(0), 1u);        // seconds
  EXPECT_EQ(wheel.granularity(1), 60u);       // minutes
  EXPECT_EQ(wheel.granularity(2), 3600u);     // hours
  EXPECT_EQ(wheel.granularity(3), 86400u);    // days
  EXPECT_EQ(wheel.max_interval(), 100u * 86400u - 86400u);  // 99 days
}

TEST(HierarchicalWheelTest, Figure10To11WorkedExample) {
  // "Let the current time be 11 days 10 hours, 24 minutes, 30 seconds. Then to set a
  // timer of 50 minutes and 45 seconds, we first calculate the absolute time at
  // which the timer will expire. This is 11 days, 11 hours, 15 minutes, 15 seconds.
  // Then we insert the timer into a list beginning 1 (11 - 10 hours) element ahead
  // of the current hour pointer in the hour array."
  HierarchicalWheel wheel(kPaperLevels);
  const Tick start = 11 * 86400 + 10 * 3600 + 24 * 60 + 30;
  wheel.AdvanceBy(start);
  ASSERT_EQ(wheel.now(), start);

  std::vector<Tick> fired;
  wheel.set_expiry_handler([&](RequestId, Tick when) { fired.push_back(when); });

  const Duration interval = 50 * 60 + 45;  // 50 minutes 45 seconds
  ASSERT_TRUE(wheel.StartTimer(interval, 1).has_value());

  // Figure 10: the timer sits in the hour array (level 2).
  EXPECT_EQ(wheel.LevelPopulationSlow(2), 1u);
  EXPECT_EQ(wheel.LevelPopulationSlow(1), 0u);
  EXPECT_EQ(wheel.LevelPopulationSlow(0), 0u);

  // Advance to the top of hour 11 (the Figure 11 moment): "EXPIRY_PROCESSING will
  // insert the remainder of the seconds in the minute array, 15 elements after the
  // current minute pointer (0)."
  const Tick hour11 = 11 * 86400 + 11 * 3600;
  wheel.AdvanceBy(hour11 - start);
  EXPECT_TRUE(fired.empty());
  EXPECT_EQ(wheel.LevelPopulationSlow(2), 0u);
  EXPECT_EQ(wheel.LevelPopulationSlow(1), 1u);  // minute array, slot 15

  // "Eventually, the minute array will reach the 15th element; as part of
  // EXPIRY_PROCESSING we will move the timer into the SECOND array 15 seconds after
  // the current value."
  wheel.AdvanceBy(15 * 60 - 1);
  EXPECT_TRUE(fired.empty());
  EXPECT_EQ(wheel.LevelPopulationSlow(1), 1u);
  wheel.PerTickBookkeeping();  // minute boundary: migrate to second array
  EXPECT_TRUE(fired.empty());
  EXPECT_EQ(wheel.LevelPopulationSlow(1), 0u);
  EXPECT_EQ(wheel.LevelPopulationSlow(0), 1u);

  // "15 seconds later the timer will actually expire."
  wheel.AdvanceBy(15);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], start + interval);
  EXPECT_EQ(fired[0], 11 * 86400 + 11 * 3600 + 15 * 60 + 15);

  // Exactly the paper's two migrations: hour -> minute -> second.
  EXPECT_EQ(wheel.counts().migrations, 2u);
}

TEST(HierarchicalWheelTest, ZeroRemainderSkipsLevels) {
  // "Of course, if the minutes remaining were zero, we could go directly to the
  // second array" — and with zero seconds too, expiry happens at the hour visit.
  HierarchicalWheel wheel(kPaperLevels);
  std::vector<Tick> fired;
  wheel.set_expiry_handler([&](RequestId, Tick when) { fired.push_back(when); });
  wheel.AdvanceBy(3600);  // aligned at an hour boundary

  ASSERT_TRUE(wheel.StartTimer(2 * 3600, 1).has_value());  // exactly two hours
  EXPECT_EQ(wheel.LevelPopulationSlow(2), 1u);
  wheel.AdvanceBy(2 * 3600);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 3 * 3600u);
  EXPECT_EQ(wheel.counts().migrations, 0u);  // expired straight from the hour array
}

TEST(HierarchicalWheelTest, MigrationCountBoundedByLevels) {
  HierarchicalWheel wheel(kPaperLevels);
  std::size_t fired = 0;
  wheel.set_expiry_handler([&](RequestId, Tick) { ++fired; });
  // A day-level timer with nonzero day/hour/minute/second digits migrates
  // day -> hour -> minute -> second = m - 1 = 3 times.
  ASSERT_TRUE(wheel.StartTimer(86400 + 3600 + 60 + 1, 1).has_value());
  wheel.AdvanceBy(86400 + 3600 + 60 + 1);
  EXPECT_EQ(fired, 1u);
  EXPECT_EQ(wheel.counts().migrations, 3u);
}

TEST(HierarchicalWheelTest, RangeRejectAndClamp) {
  HierarchicalWheel reject(kPaperLevels);
  auto r = reject.StartTimer(reject.max_interval() + 1, 1);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), TimerError::kIntervalOutOfRange);
  EXPECT_TRUE(reject.StartTimer(reject.max_interval(), 2).has_value());

  HierarchicalWheelOptions options;
  options.overflow = OverflowPolicy::kClamp;
  HierarchicalWheel clamp(kPaperLevels, options);
  std::vector<Tick> fired;
  clamp.set_expiry_handler([&](RequestId, Tick when) { fired.push_back(when); });
  ASSERT_TRUE(clamp.StartTimer(clamp.max_interval() + 12345, 1).has_value());
  clamp.AdvanceBy(clamp.max_interval());
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], clamp.max_interval());
}

TEST(HierarchicalWheelTest, ExactExpiryForBoundaryIntervalsFromUnalignedNow) {
  // Sweep intervals across level granularity boundaries from a deliberately ugly
  // current time; full migration must deliver exact expiry for all of them.
  HierarchicalWheel wheel(std::array<std::size_t, 3>{8, 8, 8});
  wheel.AdvanceBy(123);  // not aligned to anything
  std::vector<std::pair<Tick, RequestId>> fired;
  wheel.set_expiry_handler([&](RequestId id, Tick when) { fired.push_back({when, id}); });

  std::vector<Tick> expected;
  RequestId id = 0;
  for (Duration interval :
       {Duration{1},  Duration{7},   Duration{8},   Duration{9},   Duration{63},
        Duration{64}, Duration{65},  Duration{127}, Duration{128}, Duration{129},
        Duration{447}, Duration{448}}) {
    ASSERT_LE(interval, wheel.max_interval());
    expected.push_back(wheel.now() + interval);
    ASSERT_TRUE(wheel.StartTimer(interval, id++).has_value());
  }
  wheel.AdvanceBy(600);
  ASSERT_EQ(fired.size(), expected.size());
  for (const auto& [when, rid] : fired) {
    EXPECT_EQ(when, expected[rid]) << "interval index " << rid;
  }
}

TEST(HierarchicalWheelTest, StopDuringAnyResidenceLevel) {
  HierarchicalWheel wheel(kPaperLevels);
  std::size_t fired = 0;
  wheel.set_expiry_handler([&](RequestId, Tick) { ++fired; });

  auto h = wheel.StartTimer(3 * 3600 + 30 * 60 + 30, 1);  // 3h30m30s
  ASSERT_TRUE(h.has_value());
  // Let it migrate into the minute array, then stop it there.
  wheel.AdvanceBy(3 * 3600 + 1);
  EXPECT_EQ(wheel.LevelPopulationSlow(1), 1u);
  EXPECT_EQ(wheel.StopTimer(h.value()), TimerError::kOk);
  wheel.AdvanceBy(7200);
  EXPECT_EQ(fired, 0u);
  EXPECT_EQ(wheel.outstanding(), 0u);
}

TEST(HierarchicalWheelTest, NoMigrationModeRoundsWithinOneUnit) {
  // Wick Nichols: "we would round off to the nearest hour and only set the timer in
  // hours... a loss in precision of up to 50%". The fire tick may deviate from the
  // exact expiry by at most the insertion level's granularity.
  HierarchicalWheelOptions options;
  options.migration = MigrationPolicy::kNone;
  HierarchicalWheel wheel(std::array<std::size_t, 3>{16, 16, 16}, options);
  wheel.AdvanceBy(57);

  for (Duration interval : {Duration{5}, Duration{20}, Duration{100}, Duration{300},
                            Duration{1000}, Duration{3000}}) {
    std::vector<Tick> fired;
    wheel.set_expiry_handler([&](RequestId, Tick when) { fired.push_back(when); });
    const Tick exact = wheel.now() + interval;
    ASSERT_TRUE(wheel.StartTimer(interval, 1).has_value());
    wheel.AdvanceBy(2 * interval + 512);
    ASSERT_EQ(fired.size(), 1u) << "interval " << interval;
    // Error bound: one unit of the coarsest granularity the interval can occupy.
    Duration bound = 1;
    for (std::size_t level = 0; level < wheel.num_levels(); ++level) {
      if (wheel.granularity(level) <= interval) {
        bound = wheel.granularity(level);
      }
    }
    const Tick fired_at = fired[0];
    const Duration error =
        fired_at > exact ? fired_at - exact : exact - fired_at;
    EXPECT_LE(error, bound) << "interval " << interval;
    EXPECT_EQ(wheel.counts().migrations, 0u);
  }
}

TEST(HierarchicalWheelTest, SingleStepModeErrorBoundedByAdjacentGranularity) {
  // "Alternately, we can improve the precision by allowing just one migration
  // between adjacent lists."
  HierarchicalWheelOptions options;
  options.migration = MigrationPolicy::kSingleStep;
  HierarchicalWheel wheel(std::array<std::size_t, 3>{16, 16, 16}, options);
  wheel.AdvanceBy(39);

  for (Duration interval : {Duration{300}, Duration{1000}, Duration{3000}}) {
    std::vector<Tick> fired;
    wheel.set_expiry_handler([&](RequestId, Tick when) { fired.push_back(when); });
    const Tick exact = wheel.now() + interval;
    ASSERT_TRUE(wheel.StartTimer(interval, 1).has_value());
    wheel.AdvanceBy(2 * interval + 512);
    ASSERT_EQ(fired.size(), 1u) << "interval " << interval;
    // After one migration the timer rests one level below its insertion level; the
    // residual error is under that level's granularity. For these intervals the
    // insertion level is at most 2, so the bound is g(1) = 16.
    const Tick fired_at = fired[0];
    ASSERT_LE(fired_at, exact);
    EXPECT_LT(exact - fired_at, 16u) << "interval " << interval;
  }
}

TEST(HierarchicalWheelTest, SpaceIsSumNotProductOfLevelSizes) {
  // "Instead of 100 * 24 * 60 * 60 = 8.64 million locations to store timers up to
  // 100 days, we need only 100 + 24 + 60 + 60 = 244 locations." We can't observe
  // allocation directly here, but the span/slots relationship is testable.
  HierarchicalWheel wheel(kPaperLevels);
  std::size_t total_slots = 0;
  for (std::size_t level = 0; level < wheel.num_levels(); ++level) {
    total_slots += level == 0 ? 60 : level == 1 ? 60 : level == 2 ? 24 : 100;
  }
  EXPECT_EQ(total_slots, 244u);
  EXPECT_EQ(wheel.max_interval() + 86400u, 8640000u);  // spans the 8.64M ticks
}

TEST(HierarchicalWheelDeathTest, BadGeometriesAbort) {
  EXPECT_DEATH(HierarchicalWheel(std::array<std::size_t, 1>{64}), "2..8 levels");
  EXPECT_DEATH(HierarchicalWheel(std::array<std::size_t, 2>{1, 64}),
               "at least two slots");
}

}  // namespace
}  // namespace twheel
