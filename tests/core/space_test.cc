// The paper's SPACE measure (Section 2), across schemes: fixed structure scaling,
// the Section 6.2 hierarchy arithmetic, and the relative per-record appetites.

#include <gtest/gtest.h>

#include <array>
#include <memory>

#include "src/base/bitmap.h"
#include "src/baselines/heap_timers.h"
#include "src/baselines/unordered_timers.h"
#include "src/core/basic_wheel.h"
#include "src/core/hierarchical_wheel.h"
#include "src/core/timer_facility.h"
#include "src/hw/timer_chip.h"

namespace twheel {
namespace {

TEST(SpaceTest, EverySchemeReportsAProfile) {
  for (SchemeId id : kAllSchemes) {
    FacilityConfig config;
    config.scheme = id;
    auto service = MakeTimerService(config);
    auto profile = service->Space();
    EXPECT_GE(profile.essential_record_bytes, 24u) << SchemeName(id);
    EXPECT_LE(profile.essential_record_bytes, profile.actual_record_bytes)
        << SchemeName(id) << ": essentials can't exceed the shared hot+cold pair";
    EXPECT_EQ(profile.hot_record_bytes, sizeof(TimerRecord)) << SchemeName(id);
    EXPECT_EQ(profile.cold_record_bytes, sizeof(ColdTimerRecord)) << SchemeName(id);
    EXPECT_EQ(profile.actual_record_bytes,
              sizeof(TimerRecord) + sizeof(ColdTimerRecord))
        << SchemeName(id);
    // The whole point of the split: the per-op working set is one cache line.
    EXPECT_LE(profile.hot_record_bytes, 64u) << SchemeName(id);
  }
}

TEST(SpaceTest, ListSchemesHaveNoFixedStructure) {
  // "Scheme 1 needs the minimum space possible; Scheme 2 needs O(n) extra space for
  // the forward and back pointers" — neither owns population-independent arrays.
  for (SchemeId id : {SchemeId::kScheme1Unordered, SchemeId::kScheme2SortedFront,
                      SchemeId::kScheme3Bst, SchemeId::kScheme3Leftist}) {
    FacilityConfig config;
    config.scheme = id;
    auto service = MakeTimerService(config);
    EXPECT_EQ(service->Space().fixed_bytes, 0u) << SchemeName(id);
  }
}

TEST(SpaceTest, WheelFixedCostScalesWithSlots) {
  BasicWheel small(256);
  BasicWheel large(65536);
  EXPECT_EQ(small.Space().fixed_bytes,
            256 * sizeof(IntrusiveList<TimerRecord>) +
                OccupancyBitmap::BytesFor(256));
  EXPECT_EQ(large.Space().fixed_bytes,
            65536 * sizeof(IntrusiveList<TimerRecord>) +
                OccupancyBitmap::BytesFor(65536));
  // The occupancy bitmap rides along at well under 1% of the slot array: two
  // bits-per-slot levels against a 16-byte list head per slot.
  EXPECT_LT(OccupancyBitmap::BytesFor(65536) * 100,
            65536 * sizeof(IntrusiveList<TimerRecord>));
}

TEST(SpaceTest, HierarchySlotArithmeticMatchesPaper) {
  // "Instead of 100 * 24 * 60 * 60 = 8.64 million locations to store timers up to
  // 100 days, we need only 100 + 24 + 60 + 60 = 244 locations."
  HierarchicalWheel hierarchy(std::array<std::size_t, 4>{60, 60, 24, 100});
  const std::size_t bitmap_bytes =
      2 * OccupancyBitmap::BytesFor(60) + OccupancyBitmap::BytesFor(24) +
      OccupancyBitmap::BytesFor(100);
  EXPECT_EQ(hierarchy.Space().fixed_bytes,
            244 * sizeof(IntrusiveList<TimerRecord>) + bitmap_bytes);

  // The flat wheel covering the same range would need 8.64M slots; the
  // hierarchy's whole footprint (bitmaps included) stays >30000x smaller.
  const std::size_t flat_slots = 60 * 60 * 24 * 100;
  EXPECT_EQ(flat_slots, 8640000u);
  EXPECT_GT(flat_slots * sizeof(IntrusiveList<TimerRecord>) /
                hierarchy.Space().fixed_bytes,
            30000u);
}

TEST(SpaceTest, HeapAuxiliaryTracksPopulation) {
  HeapTimers heap;
  EXPECT_EQ(heap.Space().auxiliary_bytes, 0u);
  for (RequestId id = 0; id < 1000; ++id) {
    ASSERT_TRUE(heap.StartTimer(1000, id).has_value());
  }
  EXPECT_GE(heap.Space().auxiliary_bytes, 1000 * sizeof(void*));
}

TEST(SpaceTest, ChipAddsBusyBitsOnly) {
  // The chip holds one busy bit per slot in its own memory on top of the bare
  // host slot array; the software wheel carries the two-level occupancy bitmap
  // (its software analogue, one summary level larger) instead.
  hw::ChipAssistedWheel chip(256);
  const std::size_t bare_slots = 256 * sizeof(IntrusiveList<TimerRecord>);
  EXPECT_EQ(chip.Space().fixed_bytes, bare_slots + 256 / 8);

  FacilityConfig config;
  config.scheme = SchemeId::kScheme6HashedUnsorted;
  config.wheel_size = 256;
  auto plain = MakeTimerService(config);
  EXPECT_EQ(plain->Space().fixed_bytes,
            bare_slots + OccupancyBitmap::BytesFor(256));
}

TEST(SpaceTest, SchemeOrderingMatchesPaperCommentary) {
  // Per-record appetite: trees > hashed wheels > plain lists/wheels.
  FacilityConfig config;
  config.scheme = SchemeId::kScheme3Avl;
  auto avl = MakeTimerService(config);
  config.scheme = SchemeId::kScheme6HashedUnsorted;
  auto hashed = MakeTimerService(config);
  config.scheme = SchemeId::kScheme1Unordered;
  auto plain = MakeTimerService(config);
  EXPECT_GT(avl->Space().essential_record_bytes, hashed->Space().essential_record_bytes);
  EXPECT_GT(hashed->Space().essential_record_bytes, plain->Space().essential_record_bytes);
}

}  // namespace
}  // namespace twheel
