// NextExpiryHint exactness under random churn, for every scheme.
//
// The hint is the load-bearing primitive behind both time-flow accelerators:
// sim::Simulator jumps straight to the hinted tick, and TickerThread catch-up
// trusts it to bound a batch. A hint that is ever LATER than the true next
// expiry silently skips dispatches; one that is too early only costs work. This
// property test pins the strong form — equality with the oracle's ordered-map
// minimum — on every scheme that claims the capability, through the full
// mutation alphabet: starts, stops, restarts, finite periodics, single ticks,
// and AdvanceTo jumps (half of them aimed exactly AT the hinted tick, the
// simulator's usage pattern).
//
// For the Lawn store this is precisely the min-over-bucket-heads invariant:
// each per-TTL FIFO bucket is expiry-sorted by construction (appends at
// non-decreasing now with a fixed TTL), so the store-wide minimum must be the
// min over bucket heads plus the overflow head — any bucket whose head is not
// its true minimum diverges from the oracle here within one round.
//
// Schemes 1 (unordered list) and 3-leftist don't implement the capability and
// must answer nullopt forever; everyone else must match the oracle exactly
// whenever it answers at all, and must answer whenever timers are outstanding.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/timer_facility.h"
#include "src/rng/rng.h"
#include "src/verify/oracle.h"

namespace twheel {
namespace {

bool SchemeImplementsHint(SchemeId id) {
  return id != SchemeId::kScheme1Unordered && id != SchemeId::kScheme3Leftist;
}

struct HintCase {
  std::string label;
  SchemeId scheme;
  std::uint64_t seed;
};

void PrintTo(const HintCase& c, std::ostream* os) { *os << c.label; }

std::vector<HintCase> AllHintCases() {
  std::vector<HintCase> cases;
  for (SchemeId id : kAllSchemes) {
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      cases.push_back({std::string(SchemeName(id)) + "_s" + std::to_string(seed),
                       id, seed});
    }
  }
  return cases;
}

class NextExpiryHintPropertyTest : public ::testing::TestWithParam<HintCase> {};

TEST_P(NextExpiryHintPropertyTest, HintMatchesOracleUnderChurn) {
  const HintCase& c = GetParam();
  FacilityConfig config;
  config.scheme = c.scheme;
  config.wheel_size = 512;
  config.level_sizes = {16, 16, 16};
  auto sut = MakeTimerService(config);
  verify::OracleTimers oracle;

  // Fired ids accumulate here; one-shot entries are retired after each time
  // step. Periodic entries are retired lazily, when a later stop finds the
  // handle stale on both sides.
  std::vector<RequestId> sut_fired;
  std::vector<RequestId> oracle_fired;
  sut->set_expiry_handler(
      [&sut_fired](RequestId id, Tick) { sut_fired.push_back(id); });
  oracle.set_expiry_handler(
      [&oracle_fired](RequestId id, Tick) { oracle_fired.push_back(id); });

  struct Pair {
    TimerHandle sut;
    TimerHandle oracle;
    bool periodic = false;
  };
  std::unordered_map<RequestId, Pair> live;
  std::vector<RequestId> ids;  // registry keys, for random victim selection

  rng::Xoshiro256 rng(0x41A7 + c.seed);
  RequestId next_id = 1;
  const Duration kMaxInterval = 300;  // within every configured span

  const auto check_hint = [&](const char* where) {
    const std::optional<Tick> got = sut->NextExpiryHint();
    const std::optional<Tick> want = oracle.NextExpiryHint();
    if (!SchemeImplementsHint(c.scheme)) {
      ASSERT_FALSE(got.has_value())
          << c.label << " " << where << ": hint from a scheme without the capability";
      return;
    }
    ASSERT_EQ(got.has_value(), want.has_value())
        << c.label << " " << where << " at tick " << sut->now();
    if (want.has_value()) {
      ASSERT_EQ(*got, *want)
          << c.label << " " << where << " at tick " << sut->now()
          << ": hint is not the exact minimum";
    }
  };

  for (int round = 0; round < 400; ++round) {
    // Mutations: a couple of starts, then each alphabet letter by coin flip.
    const std::size_t starts = 1 + rng.NextBounded(2);
    for (std::size_t i = 0; i < starts; ++i) {
      const RequestId id = next_id++;
      const Duration interval = 1 + rng.NextBounded(kMaxInterval);
      StartResult rs = sut->StartTimer(interval, id);
      StartResult ro = oracle.StartTimer(interval, id);
      ASSERT_EQ(rs.has_value(), ro.has_value()) << c.label;
      if (rs.has_value()) {
        live.emplace(id, Pair{rs.value(), ro.value(), false});
        ids.push_back(id);
      }
      ASSERT_NO_FATAL_FAILURE(check_hint("after start"));
    }
    if (rng.NextBool(0.15)) {
      const RequestId id = next_id++;
      const Duration period = 1 + rng.NextBounded(64);
      const std::uint64_t repeats = 1 + rng.NextBounded(4);
      StartResult rs = sut->StartPeriodic(period, id, repeats);
      StartResult ro = oracle.StartPeriodic(period, id, repeats);
      ASSERT_EQ(rs.has_value(), ro.has_value()) << c.label;
      if (rs.has_value()) {
        live.emplace(id, Pair{rs.value(), ro.value(), true});
        ids.push_back(id);
      }
      ASSERT_NO_FATAL_FAILURE(check_hint("after start_periodic"));
    }
    if (rng.NextBool(0.3) && !ids.empty()) {
      const std::size_t at = rng.NextBounded(ids.size());
      const RequestId victim = ids[at];
      const Pair p = live.find(victim)->second;
      const TimerError rs = sut->StopTimer(p.sut);
      const TimerError ro = oracle.StopTimer(p.oracle);
      ASSERT_EQ(rs, ro) << c.label << ": stop of id " << victim;
      // kOk: genuinely cancelled. kNoSuchTimer: the registry entry was stale
      // (already fired); either way it is dead now — drop it.
      live.erase(victim);
      ids[at] = ids.back();
      ids.pop_back();
      ASSERT_NO_FATAL_FAILURE(check_hint("after stop"));
    }
    if (rng.NextBool(0.2) && !ids.empty()) {
      const std::size_t at = rng.NextBounded(ids.size());
      const RequestId victim = ids[at];
      const Pair p = live.find(victim)->second;
      const Duration interval = 1 + rng.NextBounded(kMaxInterval);
      const TimerError rs = sut->RestartTimer(p.sut, interval);
      const TimerError ro = oracle.RestartTimer(p.oracle, interval);
      ASSERT_EQ(rs, ro) << c.label << ": restart of id " << victim;
      if (rs == TimerError::kNoSuchTimer) {
        live.erase(victim);
        ids[at] = ids.back();
        ids.pop_back();
      }
      ASSERT_NO_FATAL_FAILURE(check_hint("after restart"));
    }

    // Time flow: mostly single ticks; sometimes a jump, half of those aimed
    // exactly at the hinted tick (the Simulator's pattern — land ON the next
    // event), the rest at a random nearby target.
    sut_fired.clear();
    oracle_fired.clear();
    if (rng.NextBool(0.25)) {
      Tick target = sut->now() + 1 + rng.NextBounded(32);
      const std::optional<Tick> hint = oracle.NextExpiryHint();
      if (hint.has_value() && *hint > sut->now() && rng.NextBool(0.5)) {
        target = *hint;
      }
      const std::size_t ns = sut->AdvanceTo(target);
      const std::size_t no = oracle.AdvanceTo(target);
      ASSERT_EQ(ns, no) << c.label << ": jump to " << target;
    } else {
      const std::size_t ns = sut->PerTickBookkeeping();
      const std::size_t no = oracle.PerTickBookkeeping();
      ASSERT_EQ(ns, no) << c.label << " at tick " << sut->now();
    }
    ASSERT_EQ(sut->now(), oracle.now()) << c.label;
    std::sort(sut_fired.begin(), sut_fired.end());
    std::sort(oracle_fired.begin(), oracle_fired.end());
    ASSERT_EQ(sut_fired, oracle_fired) << c.label << " at tick " << sut->now();
    for (RequestId id : sut_fired) {
      auto it = live.find(id);
      if (it != live.end() && !it->second.periodic) {
        live.erase(it);
        for (std::size_t i = 0; i < ids.size(); ++i) {
          if (ids[i] == id) {
            ids[i] = ids.back();
            ids.pop_back();
            break;
          }
        }
      }
    }
    ASSERT_EQ(sut->outstanding(), oracle.outstanding())
        << c.label << " at tick " << sut->now();
    ASSERT_NO_FATAL_FAILURE(check_hint("after time step"));
    // The capability's liveness half: outstanding timers MUST produce a hint
    // (the oracle always answers; a hinting scheme may not go blank).
    if (SchemeImplementsHint(c.scheme) && oracle.outstanding() > 0) {
      ASSERT_TRUE(sut->NextExpiryHint().has_value())
          << c.label << ": blank hint with " << oracle.outstanding()
          << " outstanding at tick " << sut->now();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, NextExpiryHintPropertyTest,
                         ::testing::ValuesIn(AllHintCases()),
                         [](const ::testing::TestParamInfo<HintCase>& param) {
                           std::string name = param.param.label;
                           for (char& ch : name) {
                             if (ch == '-') {
                               ch = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace twheel
