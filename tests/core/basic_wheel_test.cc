// Scheme 4 (Section 5, Figure 8): range-bounded timing wheel specifics.

#include <gtest/gtest.h>

#include <vector>

#include "src/core/basic_wheel.h"

namespace twheel {
namespace {

TEST(BasicWheelTest, RejectsIntervalAtOrBeyondMaxInterval) {
  BasicWheel wheel(16);
  auto at_max = wheel.StartTimer(16, 1);
  ASSERT_FALSE(at_max.has_value());
  EXPECT_EQ(at_max.error(), TimerError::kIntervalOutOfRange);
  auto beyond = wheel.StartTimer(1000, 2);
  ASSERT_FALSE(beyond.has_value());
  EXPECT_EQ(beyond.error(), TimerError::kIntervalOutOfRange);
  // The maximum representable interval is MaxInterval - 1.
  EXPECT_TRUE(wheel.StartTimer(15, 3).has_value());
}

TEST(BasicWheelTest, ClampPolicySaturates) {
  BasicWheel wheel(16, OverflowPolicy::kClamp);
  std::vector<Tick> fired;
  wheel.set_expiry_handler([&](RequestId, Tick when) { fired.push_back(when); });
  ASSERT_TRUE(wheel.StartTimer(1000, 1).has_value());
  wheel.AdvanceBy(15);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 15u);  // clamped to MaxInterval - 1
}

TEST(BasicWheelTest, CursorWrapsModuloMaxInterval) {
  BasicWheel wheel(8);
  EXPECT_EQ(wheel.cursor(), 0u);
  wheel.AdvanceBy(8);
  EXPECT_EQ(wheel.cursor(), 0u);
  wheel.AdvanceBy(3);
  EXPECT_EQ(wheel.cursor(), 3u);
  EXPECT_EQ(wheel.now(), 11u);
}

TEST(BasicWheelTest, ExpiryCorrectAcrossManyRevolutions) {
  // Start timers from arbitrary cursor positions over many wraps; each must fire at
  // exactly start + interval.
  BasicWheel wheel(32);
  std::vector<std::pair<Tick, RequestId>> fired;
  wheel.set_expiry_handler([&](RequestId id, Tick when) { fired.push_back({when, id}); });

  Tick expected_expiry[100];
  RequestId id = 0;
  for (int revolution = 0; revolution < 10; ++revolution) {
    for (int step = 0; step < 10; ++step) {
      Duration interval = 1 + (id * 7) % 31;  // spans [1, 31]
      expected_expiry[id] = wheel.now() + interval;
      ASSERT_TRUE(wheel.StartTimer(interval, id).has_value());
      ++id;
      wheel.AdvanceBy(3);
    }
  }
  wheel.AdvanceBy(40);  // drain
  ASSERT_EQ(fired.size(), 100u);
  for (const auto& [when, rid] : fired) {
    EXPECT_EQ(when, expected_expiry[rid]) << "request " << rid;
  }
}

TEST(BasicWheelTest, StartCostIndependentOfOutstandingCount) {
  // The O(1) claim, in op counts: the 10,000th start does the same link work as the
  // first.
  BasicWheel wheel(1024);
  auto cost_of_one_start = [&](RequestId id) {
    auto before = wheel.counts();
    EXPECT_TRUE(wheel.StartTimer(500, id).has_value());
    auto delta = wheel.counts() - before;
    return delta.comparisons + delta.insert_link_ops;
  };
  std::uint64_t first = cost_of_one_start(0);
  for (RequestId id = 1; id < 10000; ++id) {
    ASSERT_TRUE(wheel.StartTimer(1 + id % 1000, id + 100000).has_value());
  }
  std::uint64_t later = cost_of_one_start(1);
  EXPECT_EQ(first, later);
  EXPECT_EQ(later, 1u);  // exactly one link op, zero comparisons
}

TEST(BasicWheelTest, EmptyTickCostsOneSlotCheck) {
  BasicWheel wheel(64);
  auto before = wheel.counts();
  wheel.AdvanceBy(100);
  auto delta = wheel.counts() - before;
  EXPECT_EQ(delta.empty_slot_checks, 100u);
  EXPECT_EQ(delta.decrement_visits, 0u);
}

TEST(BasicWheelTest, SameSlotDifferentRevolutionNeverConfused) {
  // With MaxInterval 8, timers started 8 ticks apart share a slot index but never an
  // occupancy: the first leaves before the second arrives.
  BasicWheel wheel(8);
  std::vector<RequestId> fired;
  wheel.set_expiry_handler([&](RequestId id, Tick) { fired.push_back(id); });
  ASSERT_TRUE(wheel.StartTimer(7, 1).has_value());
  wheel.AdvanceBy(7);
  ASSERT_TRUE(wheel.StartTimer(7, 2).has_value());
  wheel.AdvanceBy(7);
  EXPECT_EQ(fired, (std::vector<RequestId>{1, 2}));
}

TEST(BasicWheelTest, StopFromOccupiedSlotLeavesSiblings) {
  BasicWheel wheel(16);
  std::vector<RequestId> fired;
  wheel.set_expiry_handler([&](RequestId id, Tick) { fired.push_back(id); });
  auto a = wheel.StartTimer(5, 1);
  auto b = wheel.StartTimer(5, 2);
  auto c = wheel.StartTimer(5, 3);
  ASSERT_TRUE(a.has_value() && b.has_value() && c.has_value());
  EXPECT_EQ(wheel.StopTimer(b.value()), TimerError::kOk);
  wheel.AdvanceBy(5);
  EXPECT_EQ(fired, (std::vector<RequestId>{1, 3}));
}

TEST(BasicWheelDeathTest, TooSmallWheelAborts) {
  EXPECT_DEATH(BasicWheel wheel(1), "at least two slots");
}

}  // namespace
}  // namespace twheel
