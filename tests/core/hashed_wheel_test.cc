// Schemes 5 and 6 (Section 6.1, Figure 9): hashed-wheel specifics — round counting
// at table-size boundaries, sorted vs unsorted bucket behaviour, and the per-tick
// work accounting behind the n/TableSize claim.

#include <gtest/gtest.h>

#include <vector>

#include "src/core/hashed_wheel_sorted.h"
#include "src/core/hashed_wheel_unsorted.h"

namespace twheel {
namespace {

template <typename Wheel>
class HashedWheelTest : public ::testing::Test {};

using WheelTypes = ::testing::Types<HashedWheelSorted, HashedWheelUnsorted>;
TYPED_TEST_SUITE(HashedWheelTest, WheelTypes);

TYPED_TEST(HashedWheelTest, TableSizeBoundaryIntervalsExact) {
  // Intervals straddling multiples of the table size are where round/quotient
  // bookkeeping breaks if it is off by one.
  for (Duration interval : {Duration{15}, Duration{16}, Duration{17}, Duration{31},
                            Duration{32}, Duration{33}, Duration{64}, Duration{160},
                            Duration{161}}) {
    TypeParam wheel(16);
    std::vector<Tick> fired;
    wheel.set_expiry_handler([&](RequestId, Tick when) { fired.push_back(when); });
    ASSERT_TRUE(wheel.StartTimer(interval, 1).has_value());
    wheel.AdvanceBy(interval - 1);
    EXPECT_TRUE(fired.empty()) << "interval " << interval << " fired early";
    wheel.PerTickBookkeeping();
    ASSERT_EQ(fired.size(), 1u) << "interval " << interval;
    EXPECT_EQ(fired[0], interval);
  }
}

TYPED_TEST(HashedWheelTest, BoundaryIntervalsExactFromUnalignedStart) {
  // Same boundaries, but with the cursor mid-revolution at start time.
  for (Tick offset : {Tick{1}, Tick{7}, Tick{15}, Tick{16}, Tick{23}}) {
    for (Duration interval : {Duration{16}, Duration{17}, Duration{32}, Duration{48}}) {
      TypeParam wheel(16);
      std::vector<Tick> fired;
      wheel.set_expiry_handler([&](RequestId, Tick when) { fired.push_back(when); });
      wheel.AdvanceBy(offset);
      ASSERT_TRUE(wheel.StartTimer(interval, 1).has_value());
      wheel.AdvanceBy(interval);
      ASSERT_EQ(fired.size(), 1u) << "offset " << offset << " interval " << interval;
      EXPECT_EQ(fired[0], offset + interval);
    }
  }
}

TYPED_TEST(HashedWheelTest, ArbitrarilyLargeIntervalsSupported) {
  TypeParam wheel(32);
  std::vector<Tick> fired;
  wheel.set_expiry_handler([&](RequestId, Tick when) { fired.push_back(when); });
  const Duration big = 1000000;
  ASSERT_TRUE(wheel.StartTimer(big, 1).has_value());
  // Fast-forward in bulk; the timer must fire at exactly `big`.
  wheel.AdvanceBy(big - 1);
  EXPECT_TRUE(fired.empty());
  wheel.PerTickBookkeeping();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], big);
}

TEST(HashedWheelUnsortedTest, PerTickVisitsWholeBucket) {
  // Scheme 6 pays a decrement per bucket resident per visit, even for timers many
  // revolutions out — this is the n/TableSize average the paper computes.
  HashedWheelUnsorted wheel(16);
  // Three timers in the same bucket (intervals 16, 32, 48 from tick 0 share slot 0).
  for (RequestId id = 1; id <= 3; ++id) {
    ASSERT_TRUE(wheel.StartTimer(16 * id, id).has_value());
  }
  auto before = wheel.counts();
  wheel.AdvanceBy(15);  // no visits to the occupied slot yet
  auto mid = wheel.counts() - before;
  EXPECT_EQ(mid.decrement_visits, 0u);
  EXPECT_EQ(mid.empty_slot_checks, 15u);

  wheel.PerTickBookkeeping();  // tick 16: visits the bucket, touches all 3
  auto after = wheel.counts() - before;
  EXPECT_EQ(after.decrement_visits, 3u);
  EXPECT_EQ(wheel.counts().expiries, 1u);
}

TEST(HashedWheelSortedTest, PerTickExaminesOnlyHead) {
  // Scheme 5's sorted buckets make PER_TICK_BOOKKEEPING O(1): one head comparison,
  // no matter how deep the bucket.
  HashedWheelSorted wheel(16);
  for (RequestId id = 1; id <= 10; ++id) {
    ASSERT_TRUE(wheel.StartTimer(16 * id, id).has_value());
  }
  auto before = wheel.counts();
  wheel.AdvanceBy(16);  // visits the occupied slot once (15 empties + 1 occupied)
  auto delta = wheel.counts() - before;
  EXPECT_EQ(delta.empty_slot_checks, 15u);
  // Head check for the expiring timer plus one more to see the next head is not due:
  EXPECT_EQ(delta.comparisons, 2u);
  EXPECT_EQ(delta.decrement_visits, 0u);
  EXPECT_EQ(wheel.counts().expiries, 1u);
}

TEST(HashedWheelSortedTest, StartCostGrowsWithBucketDepth) {
  // Scheme 5's known weakness: START_TIMER's sorted insert scans the bucket. The
  // paper: "Although the worst case latency for START_TIMER is still O(n)..."
  HashedWheelSorted wheel(16);
  // Fill one bucket with 50 timers due ever later (all slot 0, increasing rounds).
  for (RequestId id = 1; id <= 50; ++id) {
    ASSERT_TRUE(wheel.StartTimer(16 * id, id).has_value());
  }
  auto before = wheel.counts();
  // Insert at the very back of that bucket: must scan past all 50.
  ASSERT_TRUE(wheel.StartTimer(16 * 60, 99).has_value());
  auto delta = wheel.counts() - before;
  EXPECT_EQ(delta.comparisons, 50u);
}

TEST(HashedWheelUnsortedTest, StartCostConstantRegardlessOfBucketDepth) {
  HashedWheelUnsorted wheel(16);
  for (RequestId id = 1; id <= 50; ++id) {
    ASSERT_TRUE(wheel.StartTimer(16 * id, id).has_value());
  }
  auto before = wheel.counts();
  ASSERT_TRUE(wheel.StartTimer(16 * 60, 99).has_value());
  auto delta = wheel.counts() - before;
  EXPECT_EQ(delta.comparisons, 0u);
  EXPECT_EQ(delta.insert_link_ops, 1u);
}

TEST(HashedWheelSortedTest, FifoAmongEqualExpiries) {
  HashedWheelSorted wheel(8);
  std::vector<RequestId> fired;
  wheel.set_expiry_handler([&](RequestId id, Tick) { fired.push_back(id); });
  for (RequestId id = 0; id < 4; ++id) {
    ASSERT_TRUE(wheel.StartTimer(20, id).has_value());
  }
  wheel.AdvanceBy(20);
  EXPECT_EQ(fired, (std::vector<RequestId>{0, 1, 2, 3}));
}

TYPED_TEST(HashedWheelTest, StopFromDeepBucketIsConstantTime) {
  TypeParam wheel(16);
  std::vector<TimerHandle> handles;
  for (RequestId id = 0; id < 20; ++id) {
    auto r = wheel.StartTimer(16 * (id + 1), id);
    ASSERT_TRUE(r.has_value());
    handles.push_back(r.value());
  }
  auto before = wheel.counts();
  EXPECT_EQ(wheel.StopTimer(handles[10]), TimerError::kOk);
  auto delta = wheel.counts() - before;
  EXPECT_EQ(delta.comparisons, 0u);
  EXPECT_EQ(delta.delete_unlink_ops, 1u);
}

using HashedWheelDeathTest = ::testing::Test;

TEST(HashedWheelDeathTest, NonPowerOfTwoTableAborts) {
  EXPECT_DEATH(HashedWheelSorted wheel(12), "power of two");
  EXPECT_DEATH(HashedWheelUnsorted wheel(100), "power of two");
}

}  // namespace
}  // namespace twheel
