// Section 5's wheel+list hybrid: residence routing, per-tick cost shape, and the
// long-timer start cost it consciously accepts.

#include <gtest/gtest.h>

#include <vector>

#include "src/core/hybrid_wheel.h"

namespace twheel {
namespace {

TEST(HybridWheelTest, RoutesByIntervalRange) {
  HybridWheel hybrid(64);
  ASSERT_TRUE(hybrid.StartTimer(63, 1).has_value());   // wheel
  ASSERT_TRUE(hybrid.StartTimer(64, 2).has_value());   // list
  ASSERT_TRUE(hybrid.StartTimer(5000, 3).has_value()); // list
  EXPECT_EQ(hybrid.OverflowCountSlow(), 2u);
  EXPECT_EQ(hybrid.outstanding(), 3u);
}

TEST(HybridWheelTest, BothResidencesExpireExactly) {
  HybridWheel hybrid(64);
  std::vector<std::pair<Tick, RequestId>> fired;
  hybrid.set_expiry_handler([&](RequestId id, Tick when) { fired.push_back({when, id}); });
  hybrid.AdvanceBy(11);  // unaligned start
  ASSERT_TRUE(hybrid.StartTimer(30, 1).has_value());
  ASSERT_TRUE(hybrid.StartTimer(64, 2).has_value());
  ASSERT_TRUE(hybrid.StartTimer(301, 3).has_value());
  hybrid.AdvanceBy(301);
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0], (std::pair<Tick, RequestId>{41, 1}));
  EXPECT_EQ(fired[1], (std::pair<Tick, RequestId>{75, 2}));
  EXPECT_EQ(fired[2], (std::pair<Tick, RequestId>{312, 3}));
}

TEST(HybridWheelTest, ShortTimerStartIsConstantEvenWithDeepOverflow) {
  HybridWheel hybrid(64);
  for (RequestId id = 0; id < 500; ++id) {
    ASSERT_TRUE(hybrid.StartTimer(100 + id, id).has_value());  // all overflow
  }
  auto before = hybrid.counts();
  ASSERT_TRUE(hybrid.StartTimer(10, 999).has_value());
  auto delta = hybrid.counts() - before;
  EXPECT_EQ(delta.comparisons, 0u) << "wheel inserts never touch the list";
}

TEST(HybridWheelTest, LongTimerStartPaysListScan) {
  HybridWheel hybrid(64);
  for (RequestId id = 0; id < 100; ++id) {
    ASSERT_TRUE(hybrid.StartTimer(1000 + id, id).has_value());
  }
  auto before = hybrid.counts();
  ASSERT_TRUE(hybrid.StartTimer(2000, 999).has_value());  // beyond all: full scan
  auto delta = hybrid.counts() - before;
  EXPECT_EQ(delta.comparisons, 100u);
}

TEST(HybridWheelTest, PerTickCostIsWheelSlotPlusHeadCheck) {
  HybridWheel hybrid(64);
  for (RequestId id = 0; id < 200; ++id) {
    ASSERT_TRUE(hybrid.StartTimer(100000 + id, id).has_value());  // far-future list
  }
  auto before = hybrid.counts();
  hybrid.AdvanceBy(1000);
  auto delta = hybrid.counts() - before;
  EXPECT_EQ(delta.empty_slot_checks, 1000u);  // wheel slots all empty
  EXPECT_EQ(delta.comparisons, 1000u);        // one list-head compare per tick
  EXPECT_EQ(delta.decrement_visits, 0u) << "no per-record work until expiry";
}

TEST(HybridWheelTest, StopWorksInBothResidences) {
  HybridWheel hybrid(64);
  std::size_t fired = 0;
  hybrid.set_expiry_handler([&](RequestId, Tick) { ++fired; });
  auto short_timer = hybrid.StartTimer(10, 1);
  auto long_timer = hybrid.StartTimer(500, 2);
  ASSERT_TRUE(short_timer.has_value() && long_timer.has_value());
  EXPECT_EQ(hybrid.StopTimer(short_timer.value()), TimerError::kOk);
  EXPECT_EQ(hybrid.StopTimer(long_timer.value()), TimerError::kOk);
  EXPECT_EQ(hybrid.OverflowCountSlow(), 0u);
  hybrid.AdvanceBy(600);
  EXPECT_EQ(fired, 0u);
}

}  // namespace
}  // namespace twheel
