// Property sweeps for Scheme 7: across hierarchy geometries, migration policies,
// and randomized workloads, the wheel must deliver (a) exact expiry under full
// migration, (b) the paper's precision bounds under the Wick Nichols variants, and
// (c) sane structural accounting (migration counts, level residency).

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <string>
#include <vector>

#include "src/core/hierarchical_wheel.h"
#include "src/rng/rng.h"

namespace twheel {
namespace {

struct GeometryCase {
  std::string label;
  std::vector<std::size_t> sizes;
};

std::vector<GeometryCase> Geometries() {
  return {
      {"flat_two_level", {256, 16}},
      {"binary_byte", {2, 2, 2, 2, 2, 2, 2, 2}},  // extreme: 8 levels of 2
      {"paper_like", {64, 60, 24}},
      {"uniform_16", {16, 16, 16}},
      {"skewed_big_bottom", {1024, 4, 4}},
      {"skewed_big_top", {4, 4, 1024}},
  };
}

class HierarchicalPropertyTest : public ::testing::TestWithParam<GeometryCase> {};

TEST_P(HierarchicalPropertyTest, FullMigrationIsExactUnderRandomChurn) {
  const auto& geometry = GetParam();
  HierarchicalWheel wheel(geometry.sizes);
  rng::Xoshiro256 gen(0xABCDEF);

  std::map<RequestId, Tick> expected;  // live timers -> exact expiry
  std::vector<std::pair<RequestId, TimerHandle>> live;
  RequestId next_id = 0;
  std::size_t mismatches = 0;

  wheel.set_expiry_handler([&](RequestId id, Tick when) {
    auto it = expected.find(id);
    ASSERT_NE(it, expected.end()) << "unexpected expiry " << id;
    if (it->second != when) {
      ++mismatches;
    }
    expected.erase(it);
  });

  const Duration max_interval = wheel.max_interval();
  for (int step = 0; step < 20000; ++step) {
    std::uint64_t action = gen.NextBounded(10);
    if (action < 4) {
      Duration interval = 1 + gen.NextBounded(std::min<Duration>(max_interval, 100000));
      auto result = wheel.StartTimer(interval, next_id);
      ASSERT_TRUE(result.has_value());
      expected[next_id] = wheel.now() + interval;
      live.push_back({next_id, result.value()});
      ++next_id;
    } else if (action < 6 && !live.empty()) {
      std::size_t idx = gen.NextBounded(live.size());
      auto [id, handle] = live[idx];
      if (wheel.StopTimer(handle) == TimerError::kOk) {
        expected.erase(id);
      }
      live[idx] = live.back();
      live.pop_back();
    } else {
      wheel.AdvanceBy(1 + gen.NextBounded(16));
    }
  }
  EXPECT_EQ(mismatches, 0u) << geometry.label;
  // Drain: everything still expected must fire at its exact tick.
  wheel.AdvanceBy(max_interval + 1);
  EXPECT_TRUE(expected.empty()) << expected.size() << " timers never fired";
  EXPECT_EQ(mismatches, 0u);
}

TEST_P(HierarchicalPropertyTest, NoMigrationErrorBoundedByHalfGranularity) {
  const auto& geometry = GetParam();
  HierarchicalWheelOptions options;
  options.migration = MigrationPolicy::kNone;
  HierarchicalWheel wheel(geometry.sizes, options);
  rng::Xoshiro256 gen(0x5EED);

  std::map<RequestId, Tick> exact;
  std::map<RequestId, Duration> granted_bound;
  std::size_t fired = 0;
  wheel.set_expiry_handler([&](RequestId id, Tick when) {
    ++fired;
    const Tick want = exact.at(id);
    const Duration bound = granted_bound.at(id);
    const Duration error = when > want ? when - want : want - when;
    // Nearest-slot rounding: error <= g/2 at the magnitude level, <= g'/2 if the
    // timer escalated one level (g' = next granularity). Assert the looser bound.
    EXPECT_LE(error, bound) << "timer " << id;
  });

  const Duration usable = std::min<Duration>(wheel.max_interval(), 50000);
  RequestId next_id = 0;
  for (int step = 0; step < 4000; ++step) {
    Duration interval = 1 + gen.NextBounded(usable);
    // Magnitude level for this interval, then allow one escalation.
    std::size_t level = 0;
    while (level + 1 < wheel.num_levels() &&
           wheel.granularity(level + 1) <= interval) {
      ++level;
    }
    Duration bound = wheel.granularity(level) / 2;
    if (level + 1 < wheel.num_levels()) {
      bound = std::max(bound, wheel.granularity(level + 1) / 2);
    }
    auto result = wheel.StartTimer(interval, next_id);
    ASSERT_TRUE(result.has_value());
    exact[next_id] = wheel.now() + interval;
    granted_bound[next_id] = std::max<Duration>(bound, 0);
    ++next_id;
    wheel.AdvanceBy(1 + gen.NextBounded(32));
  }
  wheel.AdvanceBy(wheel.max_interval() + 1);
  EXPECT_EQ(fired, static_cast<std::size_t>(next_id));
  EXPECT_EQ(wheel.counts().migrations, 0u);
}

TEST_P(HierarchicalPropertyTest, SingleStepNeverLateAndErrorUnderAdjacentGranularity) {
  const auto& geometry = GetParam();
  HierarchicalWheelOptions options;
  options.migration = MigrationPolicy::kSingleStep;
  HierarchicalWheel wheel(geometry.sizes, options);
  rng::Xoshiro256 gen(0xFACE);

  std::map<RequestId, std::pair<Tick, Duration>> exact_and_bound;
  std::size_t fired = 0;
  wheel.set_expiry_handler([&](RequestId id, Tick when) {
    ++fired;
    auto [want, bound] = exact_and_bound.at(id);
    ASSERT_LE(when, want) << "single-step must truncate, never overshoot";
    EXPECT_LT(want - when, std::max<Duration>(bound, 1)) << "timer " << id;
  });

  const Duration usable = std::min<Duration>(wheel.max_interval(), 50000);
  RequestId next_id = 0;
  for (int step = 0; step < 4000; ++step) {
    Duration interval = 1 + gen.NextBounded(usable);
    auto result = wheel.StartTimer(interval, next_id);
    ASSERT_TRUE(result.has_value());
    // After at most one migration the timer rests one level under its insertion
    // level; the digit rule can insert as high as the level just containing the
    // whole expiry gap, so the residual error is < granularity(insert_level - 1).
    // Compute the insertion level exactly as the wheel would.
    std::size_t insert_level = 0;
    const Tick expiry = wheel.now() + interval;
    for (std::size_t level = wheel.num_levels(); level-- > 0;) {
      if (expiry / wheel.granularity(level) != wheel.now() / wheel.granularity(level)) {
        insert_level = level;
        break;
      }
    }
    Duration bound = insert_level == 0 ? 1 : wheel.granularity(insert_level - 1);
    exact_and_bound[next_id] = {expiry, bound};
    ++next_id;
    wheel.AdvanceBy(1 + gen.NextBounded(32));
  }
  wheel.AdvanceBy(wheel.max_interval() + 1);
  EXPECT_EQ(fired, static_cast<std::size_t>(next_id));
}

TEST_P(HierarchicalPropertyTest, MigrationsNeverExceedLevelsMinusOne) {
  const auto& geometry = GetParam();
  HierarchicalWheel wheel(geometry.sizes);
  rng::Xoshiro256 gen(0xBEEF);
  const Duration usable = std::min<Duration>(wheel.max_interval(), 100000);

  // Per-timer migration ceiling: measure one timer at a time.
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t before = wheel.counts().migrations;
    Duration interval = 1 + gen.NextBounded(usable);
    ASSERT_TRUE(wheel.StartTimer(interval, trial).has_value());
    wheel.AdvanceBy(interval);
    const std::uint64_t used = wheel.counts().migrations - before;
    EXPECT_LE(used, wheel.num_levels() - 1) << "interval " << interval;
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, HierarchicalPropertyTest,
                         ::testing::ValuesIn(Geometries()),
                         [](const ::testing::TestParamInfo<GeometryCase>& param_info) {
                           return param_info.param.label;
                         });

}  // namespace
}  // namespace twheel
