// Batched tick advancement (AdvanceTo) across the wheel schemes plus the Lawn
// store (whose jump hops between bucket-head minima instead of bitmap runs):
// the batched jump must be observationally identical to the per-tick loop
// it replaces — same expiries, same dispatch order, same clock, same tick
// count — while actually skipping dead slots (OpCounts::slots_skipped). Also
// covers the now-exact NextExpiryHint/FastForward capability the bitmaps give
// the wheels, including through sim::Simulator's event-jumping time flow.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstddef>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/core/basic_wheel.h"
#include "src/core/hashed_wheel_sorted.h"
#include "src/core/hashed_wheel_unsorted.h"
#include "src/core/hierarchical_wheel.h"
#include "src/core/hybrid_wheel.h"
#include "src/core/timer_service.h"
#include "src/lawn/lawn_timers.h"
#include "src/rng/rng.h"
#include "src/sim/simulator.h"

namespace twheel {
namespace {

struct WheelCase {
  std::string label;
  std::function<std::unique_ptr<TimerService>()> make;
  // Largest interval StartTimer accepts (bounded-range schemes).
  Duration max_start;
  // True when expiries land exactly at start + interval. The hierarchical
  // kNone/kSingleStep variants trade precision for fewer migrations by design,
  // so only loop-vs-batch equivalence is asserted for them.
  bool exact;
  // A wrap/rollover boundary worth landing jumps on (table size; level-2 unit
  // for the hierarchy).
  Duration boundary;
};

void PrintTo(const WheelCase& c, std::ostream* os) { *os << c.label; }

constexpr std::array<std::size_t, 3> kLevels = {16, 16, 16};

std::vector<WheelCase> AllWheelCases() {
  std::vector<WheelCase> cases;
  cases.push_back({"basic512",
                   [] { return std::make_unique<BasicWheel>(512); },
                   511, true, 256});
  cases.push_back({"sorted64",
                   [] { return std::make_unique<HashedWheelSorted>(64); },
                   100000, true, 64});
  cases.push_back({"unsorted64",
                   [] { return std::make_unique<HashedWheelUnsorted>(64); },
                   100000, true, 64});
  cases.push_back({"hybrid64",
                   [] { return std::make_unique<HybridWheel>(64); },
                   100000, true, 64});
  cases.push_back({"hier16x3_full",
                   [] { return std::make_unique<HierarchicalWheel>(kLevels); },
                   4095, true, 256});
  cases.push_back({"hier16x3_none",
                   [] {
                     HierarchicalWheelOptions options;
                     options.migration = MigrationPolicy::kNone;
                     return std::make_unique<HierarchicalWheel>(kLevels, options);
                   },
                   4095, false, 256});
  cases.push_back({"hier16x3_single",
                   [] {
                     HierarchicalWheelOptions options;
                     options.migration = MigrationPolicy::kSingleStep;
                     return std::make_unique<HierarchicalWheel>(kLevels, options);
                   },
                   4095, false, 256});
  cases.push_back({"lawn",
                   [] { return std::make_unique<lawn::LawnTimers>(); },
                   100000, true, 64});
  cases.push_back({"lawn_capped4",
                   [] {
                     lawn::LawnOptions options;
                     options.max_distinct_ttls = 4;
                     return std::make_unique<lawn::LawnTimers>(options);
                   },
                   100000, true, 64});
  return cases;
}

using Fired = std::vector<std::pair<Tick, RequestId>>;

void Collect(TimerService& service, Fired& into) {
  service.set_expiry_handler(
      [&into](RequestId id, Tick when) { into.emplace_back(when, id); });
}

class AdvanceToTest : public ::testing::TestWithParam<WheelCase> {};

// Twin services, identical start streams; one advances tick by tick, the other
// in batches whose sizes are pinned to word and wheel boundaries. The fired
// *sequences* (order included), clocks, populations, and tick counters must
// stay identical throughout — and the batched twin must actually have skipped
// slots rather than degenerating into the loop.
TEST_P(AdvanceToTest, BatchedAdvanceMatchesPerTickLoop) {
  const WheelCase& c = GetParam();
  auto loop = c.make();
  auto batch = c.make();
  Fired loop_fired;
  Fired batch_fired;
  Collect(*loop, loop_fired);
  Collect(*batch, batch_fired);

  const Duration steps[] = {1, 3, 63, 64, 65, 255, 256, 257, 511, 512, 513};
  rng::Xoshiro256 rng(0xB17E5 + c.boundary);
  RequestId next_id = 1;
  for (int round = 0; round < 40; ++round) {
    const std::size_t starts = rng.NextBounded(4);
    for (std::size_t i = 0; i < starts; ++i) {
      const Duration cap = std::min<Duration>(c.max_start, 600);
      const Duration interval = 1 + rng.NextBounded(cap);
      const RequestId id = next_id++;
      const StartResult a = loop->StartTimer(interval, id);
      const StartResult b = batch->StartTimer(interval, id);
      ASSERT_EQ(a.has_value(), b.has_value());
    }
    const Duration step = steps[rng.NextBounded(std::size(steps))];
    loop->AdvanceBy(step);
    batch->AdvanceTo(batch->now() + step);
    ASSERT_EQ(loop->now(), batch->now()) << c.label << " round " << round;
    ASSERT_EQ(loop_fired, batch_fired) << c.label << " round " << round;
    ASSERT_EQ(loop->outstanding(), batch->outstanding())
        << c.label << " round " << round;
  }
  EXPECT_GT(loop_fired.size(), 0u) << c.label << ": vacuous";
  const metrics::OpCounts lc = loop->counts();
  const metrics::OpCounts bc = batch->counts();
  EXPECT_EQ(lc.ticks, bc.ticks) << c.label;
  EXPECT_EQ(lc.expiries, bc.expiries) << c.label;
  EXPECT_GT(bc.batch_advances, 0u) << c.label;
  EXPECT_GT(bc.slots_skipped, 0u) << c.label << ": batched twin never skipped";
  EXPECT_EQ(lc.slots_skipped, 0u) << c.label << ": loop twin must not skip";
}

// A jump across a ≥99%-dead span must cross it without dispatching anything,
// while still counting every simulated tick (AdvanceTo is bookkeeping, not the
// hardware-assisted FastForward) and recording the skipped slots.
TEST_P(AdvanceToTest, DeadSpanIsSkippedAndCounted) {
  const WheelCase& c = GetParam();
  auto service = c.make();
  Fired fired;
  Collect(*service, fired);
  ASSERT_TRUE(service->StartTimer(300, 7).has_value());

  const std::optional<Tick> hint = service->NextExpiryHint();
  ASSERT_TRUE(hint.has_value()) << c.label;
  ASSERT_GE(*hint, 1u);
  ASSERT_LE(*hint, 300u);

  EXPECT_EQ(service->AdvanceTo(*hint - 1), 0u) << c.label;
  EXPECT_TRUE(fired.empty());
  EXPECT_EQ(service->now(), *hint - 1);
  const metrics::OpCounts counts = service->counts();
  EXPECT_EQ(counts.ticks, *hint - 1) << c.label;
  EXPECT_GE(counts.batch_advances, 1u) << c.label;
  EXPECT_GT(counts.slots_skipped, 0u) << c.label;
  EXPECT_EQ(counts.expiries, 0u) << c.label;

  if (c.exact) {
    EXPECT_EQ(*hint, 300u) << c.label << ": hint must be exact";
    EXPECT_EQ(service->AdvanceTo(300), 1u);
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0], (std::pair<Tick, RequestId>{300, 7}));
  } else {
    // Imprecise migration policies: only liveness is pinned here.
    EXPECT_EQ(service->AdvanceTo(4096), 1u) << c.label;
  }
  EXPECT_EQ(service->outstanding(), 0u);
}

// Section 3.2's hardware model: FastForward crosses dead time with the clock
// "intercepted", so no ticks are counted, and the hinted tick then fires.
TEST_P(AdvanceToTest, FastForwardCrossesDeadTimeWithoutTickCounting) {
  const WheelCase& c = GetParam();
  auto service = c.make();
  Fired fired;
  Collect(*service, fired);
  ASSERT_TRUE(service->StartTimer(37, 1).has_value());

  const std::optional<Tick> hint = service->NextExpiryHint();
  ASSERT_TRUE(hint.has_value()) << c.label;
  ASSERT_LE(*hint, 37u) << c.label << ": hint may never be late";

  ASSERT_TRUE(service->FastForward(*hint - 1)) << c.label;
  EXPECT_EQ(service->now(), *hint - 1);
  EXPECT_EQ(service->counts().ticks, 0u)
      << c.label << ": hardware-intercepted ticks must not be counted";
  EXPECT_TRUE(fired.empty());

  if (c.exact) {
    EXPECT_EQ(*hint, 37u);
    EXPECT_EQ(service->PerTickBookkeeping(), 1u) << c.label;
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0], (std::pair<Tick, RequestId>{37, 1}));
  } else {
    EXPECT_EQ(service->AdvanceTo(4096), 1u) << c.label;
    EXPECT_EQ(fired.size(), 1u);
  }
}

// Jump targets landing exactly one short of, on, and one past the scheme's wrap
// boundary, with a timer due at each: the off-by-one landscape the bitmap's
// circular distance must get right.
TEST_P(AdvanceToTest, JumpsLandingOnWrapBoundariesFireExactly) {
  const WheelCase& c = GetParam();
  if (!c.exact) {
    GTEST_SKIP() << c.label << " trades expiry precision by design";
  }
  auto service = c.make();
  Fired fired;
  Collect(*service, fired);
  const Duration b = c.boundary;
  ASSERT_TRUE(service->StartTimer(b - 1, 1).has_value());
  ASSERT_TRUE(service->StartTimer(b, 2).has_value());
  ASSERT_TRUE(service->StartTimer(b + 1, 3).has_value());

  EXPECT_EQ(service->AdvanceTo(b - 1), 1u) << c.label;
  EXPECT_EQ(service->AdvanceTo(b), 1u) << c.label;
  EXPECT_EQ(service->AdvanceTo(b + 1), 1u) << c.label;
  const Fired expected = {{b - 1, 1}, {b, 2}, {b + 1, 3}};
  EXPECT_EQ(fired, expected) << c.label;
  EXPECT_EQ(service->outstanding(), 0u);
}

// A handler re-arm landing *inside* the window still being jumped must fire in
// the same AdvanceTo call: the batched loops re-query the occupancy bitmap
// after every drain, so mid-batch insertions are never overshot.
TEST_P(AdvanceToTest, HandlerRearmInsideJumpWindowFires) {
  const WheelCase& c = GetParam();
  if (!c.exact) {
    GTEST_SKIP() << c.label << " trades expiry precision by design";
  }
  auto service = c.make();
  Fired fired;
  TimerService* raw = service.get();
  service->set_expiry_handler([&fired, raw](RequestId id, Tick when) {
    fired.emplace_back(when, id);
    if (id == 1) {
      ASSERT_TRUE(raw->StartTimer(5, 2).has_value());
    }
  });
  ASSERT_TRUE(service->StartTimer(10, 1).has_value());

  EXPECT_EQ(service->AdvanceTo(60), 2u) << c.label;
  const Fired expected = {{10, 1}, {15, 2}};
  EXPECT_EQ(fired, expected) << c.label;
  EXPECT_EQ(service->now(), 60u);
  EXPECT_EQ(service->outstanding(), 0u);
}

// The capability the bitmaps unlock at the top of the stack: Section 4's
// event-jumping time flow now works with a wheel as the pending-event set.
TEST_P(AdvanceToTest, SimulatorJumpsOverDeadTimeOnWheels) {
  const WheelCase& c = GetParam();
  sim::Simulator simulator(c.make());
  int ran = 0;
  ASSERT_TRUE(simulator.After(7, [&ran] { ++ran; }).valid());
  ASSERT_TRUE(simulator.After(200, [&ran] { ++ran; }).valid());
  const std::optional<Tick> covered = simulator.RunUntilIdleJumping(100000);
  ASSERT_TRUE(covered.has_value()) << c.label << " cannot jump";
  EXPECT_EQ(ran, 2) << c.label;
  EXPECT_EQ(simulator.pending(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllWheels, AdvanceToTest,
                         ::testing::ValuesIn(AllWheelCases()),
                         [](const ::testing::TestParamInfo<WheelCase>& param) {
                           return param.param.label;
                         });

}  // namespace
}  // namespace twheel
