// Appendix A.1's hardware-assist analysis, in executable form: with a scanning
// timer chip, Scheme 6 interrupts the host ~T/M times per timer and Scheme 7 at
// most m times.

#include <gtest/gtest.h>

#include <memory>

#include "src/core/timer_facility.h"
#include "src/hw/interrupt_model.h"

namespace twheel::hw {
namespace {

TEST(InterruptModelTest, EmptyTicksAreFree) {
  FacilityConfig config;
  config.scheme = SchemeId::kScheme6HashedUnsorted;
  config.wheel_size = 64;
  InterruptModel model(MakeTimerService(config));
  model.Run(1000);
  EXPECT_EQ(model.chip_scans(), 1000u);
  EXPECT_EQ(model.host_interrupts(), 0u);
}

TEST(InterruptModelTest, Scheme6InterruptsPerTimerIsTOverM) {
  // One timer of interval T on a table of M slots: the cursor passes its bucket
  // floor((T-1)/M) times before the expiry visit, interrupting the host each time,
  // plus once to expire — ceil(T/M) interrupts.
  constexpr Duration kT = 1000;
  constexpr std::size_t kM = 64;
  FacilityConfig config;
  config.scheme = SchemeId::kScheme6HashedUnsorted;
  config.wheel_size = kM;
  InterruptModel model(MakeTimerService(config));
  ASSERT_TRUE(model.service().StartTimer(kT, 1).has_value());
  model.Run(kT);
  EXPECT_EQ(model.service().counts().expiries, 1u);
  EXPECT_EQ(model.host_interrupts(), (kT + kM - 1) / kM);  // 16 ~= T/M
}

TEST(InterruptModelTest, Scheme7InterruptsPerTimerAtMostLevels) {
  // The same long timer under a 3-level hierarchy: at most m = 3 host interrupts
  // (migrations plus the final expiry).
  constexpr Duration kT = 1000;
  FacilityConfig config;
  config.scheme = SchemeId::kScheme7Hierarchical;
  config.level_sizes = {16, 16, 16};
  InterruptModel model(MakeTimerService(config));
  ASSERT_TRUE(model.service().StartTimer(kT, 1).has_value());
  model.Run(kT);
  EXPECT_EQ(model.service().counts().expiries, 1u);
  EXPECT_LE(model.host_interrupts(), 3u);
  EXPECT_GE(model.host_interrupts(), 1u);
}

TEST(InterruptModelTest, Scheme7BeatsScheme6ForLongTimersSmallMemory) {
  // The appendix's conclusion quantified: many long timers, small arrays.
  constexpr Duration kT = 2000;
  constexpr std::size_t kTimers = 50;

  FacilityConfig s6;
  s6.scheme = SchemeId::kScheme6HashedUnsorted;
  s6.wheel_size = 32;
  InterruptModel m6(MakeTimerService(s6));

  FacilityConfig s7;
  s7.scheme = SchemeId::kScheme7Hierarchical;
  s7.level_sizes = {8, 8, 8, 8};  // comparable memory: 32 slots total
  InterruptModel m7(MakeTimerService(s7));

  for (RequestId id = 0; id < kTimers; ++id) {
    ASSERT_TRUE(m6.service().StartTimer(kT - id, id).has_value());
    ASSERT_TRUE(m7.service().StartTimer(kT - id, id).has_value());
  }
  m6.Run(kT);
  m7.Run(kT);
  EXPECT_EQ(m6.service().counts().expiries, kTimers);
  EXPECT_EQ(m7.service().counts().expiries, kTimers);
  EXPECT_LT(m7.host_interrupts(), m6.host_interrupts());
  EXPECT_GT(m6.InterruptsPerExpiry(), 10.0);  // ~T/M = 62 visits, amortized by sharing
  EXPECT_LT(m7.InterruptsPerExpiry(), 4.0);   // <= m = 4
}

TEST(InterruptModelTest, InterruptsPerExpiryZeroWithoutExpiries) {
  FacilityConfig config;
  config.scheme = SchemeId::kScheme6HashedUnsorted;
  config.wheel_size = 64;
  InterruptModel model(MakeTimerService(config));
  EXPECT_EQ(model.InterruptsPerExpiry(), 0.0);
}

}  // namespace
}  // namespace twheel::hw
