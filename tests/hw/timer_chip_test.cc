// The Appendix A.1 chip protocol: behavioural equivalence with plain Scheme 6,
// message accounting, and the free-empty-ticks property.

#include <gtest/gtest.h>

#include "src/core/hashed_wheel_unsorted.h"
#include "src/hw/timer_chip.h"
#include "src/workload/workload.h"

namespace twheel::hw {
namespace {

TEST(ChipAssistedWheelTest, BehavesExactlyLikeScheme6) {
  workload::WorkloadSpec spec;
  spec.seed = 61;
  spec.intervals = workload::IntervalKind::kExponential;
  spec.interval_mean = 90.0;
  spec.interval_cap = 2000;
  spec.arrival_rate = 1.5;
  spec.stop_fraction = 0.4;
  spec.measured_starts = 5000;

  ChipAssistedWheel chip(64);
  HashedWheelUnsorted plain(64);
  auto chip_result = workload::Run(chip, spec);
  auto plain_result = workload::Run(plain, spec);
  EXPECT_EQ(chip_result.trace, plain_result.trace)
      << "the chip must not change observable timer behaviour";
  EXPECT_EQ(workload::NormalizedTrace(chip_result.trace), workload::PredictedTrace(spec));
}

TEST(ChipAssistedWheelTest, EmptyTicksCostTheHostNothing) {
  ChipAssistedWheel chip(64);
  chip.AdvanceBy(1000);
  EXPECT_EQ(chip.chip_scans(), 1000u);
  EXPECT_EQ(chip.host_interrupts(), 0u);
  EXPECT_EQ(chip.counts().empty_slot_checks, 0u)
      << "the chip, not the host, steps empty slots";
  EXPECT_EQ(chip.counts().TickWork(), 0u);
}

TEST(ChipAssistedWheelTest, BusyNotificationOnlyForFirstQueueEntry) {
  ChipAssistedWheel chip(64);
  // Three timers into the same queue (same slot, different rounds).
  ASSERT_TRUE(chip.StartTimer(64, 1).has_value());
  EXPECT_EQ(chip.busy_notifications(), 1u);
  ASSERT_TRUE(chip.StartTimer(128, 2).has_value());
  ASSERT_TRUE(chip.StartTimer(192, 3).has_value());
  EXPECT_EQ(chip.busy_notifications(), 1u) << "queue already marked busy";
}

TEST(ChipAssistedWheelTest, FreeNotificationOnlyWhenQueueDrains) {
  ChipAssistedWheel chip(64);
  auto a = chip.StartTimer(64, 1);
  auto b = chip.StartTimer(128, 2);
  ASSERT_TRUE(a.has_value() && b.has_value());
  EXPECT_EQ(chip.StopTimer(a.value()), TimerError::kOk);
  EXPECT_EQ(chip.free_notifications(), 0u) << "queue still occupied";
  EXPECT_EQ(chip.StopTimer(b.value()), TimerError::kOk);
  EXPECT_EQ(chip.free_notifications(), 1u);
}

TEST(ChipAssistedWheelTest, InterruptPerBusyVisitIncludingRoundsPasses) {
  ChipAssistedWheel chip(64);
  // One long timer: cursor passes its busy slot once per revolution.
  ASSERT_TRUE(chip.StartTimer(64 * 5, 1).has_value());
  chip.AdvanceBy(64 * 5);
  EXPECT_EQ(chip.counts().expiries, 1u);
  EXPECT_EQ(chip.host_interrupts(), 5u);  // 4 decrement visits + the expiry visit
  EXPECT_EQ(chip.free_notifications(), 1u);
}

TEST(ChipAssistedWheelTest, ExpiryDrainSendsFree) {
  ChipAssistedWheel chip(64);
  ASSERT_TRUE(chip.StartTimer(10, 1).has_value());
  ASSERT_TRUE(chip.StartTimer(10, 2).has_value());
  chip.AdvanceBy(10);
  EXPECT_EQ(chip.counts().expiries, 2u);
  EXPECT_EQ(chip.host_interrupts(), 1u);  // both in one queue visit
  EXPECT_EQ(chip.free_notifications(), 1u);
  chip.AdvanceBy(200);
  EXPECT_EQ(chip.host_interrupts(), 1u) << "freed slot must not interrupt again";
}

TEST(ChipAssistedWheelTest, ReentrantRearmKeepsBusyBitConsistent) {
  ChipAssistedWheel chip(64);
  int fires = 0;
  chip.set_expiry_handler([&](RequestId id, Tick) {
    if (++fires < 3) {
      // Re-arm into the same queue (interval a multiple of the table size).
      ASSERT_TRUE(chip.StartTimer(64, id).has_value());
    }
  });
  ASSERT_TRUE(chip.StartTimer(64, 1).has_value());
  chip.AdvanceBy(64 * 4);
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(chip.outstanding(), 0u);
  // After the last expiry the queue drained for good; no interrupts afterwards.
  std::uint64_t interrupts = chip.host_interrupts();
  chip.AdvanceBy(256);
  EXPECT_EQ(chip.host_interrupts(), interrupts);
}

}  // namespace
}  // namespace twheel::hw
